"""Unit tests for the CategoricalDataset container and encoders."""

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.data.encoders import FrequencyEncoder, OneHotEncoder, OrdinalEncoder


def _simple_dataset():
    values = [
        ["red", "small", "yes"],
        ["blue", "large", "no"],
        ["red", "large", "?"],
        ["green", "small", "yes"],
    ]
    return CategoricalDataset.from_values(values, labels=["a", "b", "a", "a"], name="toy")


class TestFromValues:
    def test_shapes(self):
        ds = _simple_dataset()
        assert ds.n_objects == 4
        assert ds.n_features == 3

    def test_missing_encoded_as_minus_one(self):
        ds = _simple_dataset()
        assert ds.codes[2, 2] == -1
        assert ds.has_missing

    def test_labels_mapped_to_ints(self):
        ds = _simple_dataset()
        assert ds.labels.tolist() == [0, 1, 0, 0]
        assert ds.n_clusters_true == 2

    def test_vocabulary_sizes(self):
        ds = _simple_dataset()
        assert ds.n_categories[0] == 3  # red, blue, green
        assert ds.n_categories[2] == 2  # yes, no (missing not a category)

    def test_roundtrip_to_values(self):
        ds = _simple_dataset()
        values = ds.to_values()
        assert values[0, 0] == "red"
        assert values[2, 2] is None

    def test_value_counts(self):
        ds = _simple_dataset()
        counts = ds.value_counts(0)
        assert counts["red"] == 2
        assert counts["blue"] == 1


class TestFromCodes:
    def test_basic(self):
        codes = np.array([[0, 1], [1, 0], [2, 1]])
        ds = CategoricalDataset.from_codes(codes)
        assert ds.n_categories == [3, 2]

    def test_explicit_categories_can_exceed_observed(self):
        ds = CategoricalDataset.from_codes(np.array([[0], [1]]), n_categories=[5])
        assert ds.n_categories == [5]

    def test_code_exceeding_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDataset.from_codes(np.array([[4]]), n_categories=[2])

    def test_wrong_categories_length_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDataset.from_codes(np.array([[0, 0]]), n_categories=[2])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDataset.from_codes(np.array([[0], [1]]), labels=[0])


class TestTransformations:
    def test_drop_missing(self):
        ds = _simple_dataset()
        clean = ds.drop_missing()
        assert clean.n_objects == 3
        assert not clean.has_missing

    def test_subset_preserves_labels(self):
        ds = _simple_dataset()
        sub = ds.subset([0, 3])
        assert sub.n_objects == 2
        assert sub.labels.tolist() == [0, 0]

    def test_select_features(self):
        ds = _simple_dataset()
        sub = ds.select_features([0, 2])
        assert sub.n_features == 2
        assert sub.feature_names == ["F0", "F2"]

    def test_shuffled_preserves_content(self, rng):
        ds = _simple_dataset()
        shuffled = ds.shuffled(rng)
        assert sorted(shuffled.codes[:, 0].tolist()) == sorted(ds.codes[:, 0].tolist())

    def test_summary_matches_table2_columns(self):
        summary = _simple_dataset().summary()
        assert {"name", "d", "n", "k_star"} <= set(summary)


class TestOneHotEncoder:
    def test_shape_and_values(self):
        ds = _simple_dataset()
        encoded = OneHotEncoder().fit_transform(ds)
        assert encoded.shape == (4, sum(ds.n_categories))
        assert np.all(np.isin(encoded, [0.0, 1.0]))

    def test_missing_rows_have_zero_block(self):
        ds = _simple_dataset()
        encoder = OneHotEncoder().fit(ds)
        encoded = encoder.transform(ds)
        block_start = ds.n_categories[0] + ds.n_categories[1]
        assert encoded[2, block_start:].sum() == 0.0

    def test_row_sums(self):
        ds = _simple_dataset().drop_missing()
        encoded = OneHotEncoder().fit_transform(ds)
        assert np.allclose(encoded.sum(axis=1), ds.n_features)

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform(_simple_dataset())

    def test_feature_count_mismatch_raises(self):
        ds = _simple_dataset()
        encoder = OneHotEncoder().fit(ds)
        with pytest.raises(ValueError):
            encoder.transform(ds.select_features([0]))


class TestOrdinalEncoder:
    def test_missing_becomes_nan(self):
        ds = _simple_dataset()
        encoded = OrdinalEncoder().fit_transform(ds)
        assert np.isnan(encoded[2, 2])

    def test_values_match_codes(self):
        ds = _simple_dataset().drop_missing()
        encoded = OrdinalEncoder().fit_transform(ds)
        assert np.array_equal(encoded, ds.codes.astype(float))


class TestFrequencyEncoder:
    def test_frequencies_sum_to_one_per_feature(self):
        ds = _simple_dataset()
        encoder = FrequencyEncoder().fit(ds)
        for freq in encoder._frequencies:
            assert freq.sum() == pytest.approx(1.0)

    def test_encoded_values_are_frequencies(self):
        ds = _simple_dataset()
        encoded = FrequencyEncoder().fit_transform(ds)
        assert encoded[0, 0] == pytest.approx(0.5)  # "red" appears 2/4 times

    def test_missing_becomes_nan(self):
        ds = _simple_dataset()
        encoded = FrequencyEncoder().fit_transform(ds)
        assert np.isnan(encoded[2, 2])
