"""Tests for the distance substrate: Hamming, object-cluster similarity, value distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.graph_based import build_value_graph, graph_value_distances
from repro.distance.hamming import hamming_distance, hamming_matrix, pairwise_hamming
from repro.distance.object_cluster import ClusterFrequencyTable, object_cluster_similarity
from repro.distance.value_cooccurrence import (
    cooccurrence_value_distances,
    mutual_information_matrix,
)


class TestHamming:
    def test_identical_is_zero(self):
        assert hamming_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_all_different_is_one_normalized(self):
        assert hamming_distance([0, 0], [1, 1]) == 1.0

    def test_unnormalized_counts_mismatches(self):
        assert hamming_distance([0, 1, 2], [0, 2, 2], normalize=False) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance([1, 2], [1, 2, 3])

    def test_matrix_against_centers(self, toy_codes):
        centers = np.array([[0, 0, 0], [2, 2, 2]])
        D = hamming_matrix(toy_codes, centers)
        assert D.shape == (8, 2)
        assert D[0, 0] == 0.0
        assert D[4, 1] == 0.0
        assert D[0, 1] == 1.0

    def test_pairwise_symmetric_zero_diagonal(self, toy_codes):
        D = pairwise_hamming(toy_codes)
        assert np.allclose(D, D.T)
        assert np.allclose(np.diag(D), 0.0)

    def test_feature_count_mismatch_raises(self, toy_codes):
        with pytest.raises(ValueError):
            hamming_matrix(toy_codes, np.array([[0, 0]]))


class TestClusterFrequencyTable:
    def test_counts_from_labels(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        assert table.sizes.tolist() == [4.0, 4.0]
        assert table.counts[0][0, 0] == 4  # all of cluster 0 has value 0 on feature 0
        assert table.counts[0][1, 2] == 4

    def test_similarity_matrix_range_and_shape(self, toy_codes, toy_labels):
        sims = object_cluster_similarity(toy_codes, toy_labels, 2)
        assert sims.shape == (8, 2)
        assert sims.min() >= 0.0
        assert sims.max() <= 1.0

    def test_objects_prefer_their_own_cluster(self, toy_codes, toy_labels):
        sims = object_cluster_similarity(toy_codes, toy_labels, 2)
        preferred = sims.argmax(axis=1)
        assert np.array_equal(preferred, toy_labels)

    def test_incremental_add_remove_matches_rebuild(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        table.move(0, 0, 1)
        moved_labels = toy_labels.copy()
        moved_labels[0] = 1
        rebuilt = ClusterFrequencyTable.from_labels(toy_codes, moved_labels, 2)
        for r in range(toy_codes.shape[1]):
            assert np.array_equal(table.counts[r], rebuilt.counts[r])
        assert np.array_equal(table.sizes, rebuilt.sizes)

    def test_remove_from_empty_cluster_raises(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 3)
        with pytest.raises(ValueError):
            table.remove(0, 2)

    def test_missing_values_excluded(self):
        codes = np.array([[0, -1], [0, 1], [1, 1]])
        table = ClusterFrequencyTable.from_labels(codes, [0, 0, 0], 1)
        assert table.valid[1, 0] == 2.0
        sims = table.similarity_matrix()
        assert sims.shape == (3, 1)

    def test_leave_one_out_reduces_own_similarity(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        plain = table.similarity_matrix()
        loo = table.similarity_matrix(exclude_labels=toy_labels)
        own_plain = plain[np.arange(8), toy_labels]
        own_loo = loo[np.arange(8), toy_labels]
        assert np.all(own_loo <= own_plain + 1e-12)
        # Similarities to other clusters are unchanged.
        other = 1 - toy_labels
        assert np.allclose(plain[np.arange(8), other], loo[np.arange(8), other])

    def test_singleton_cluster_loo_similarity_is_zero(self):
        codes = np.array([[0, 0], [1, 1], [1, 0]])
        labels = np.array([0, 1, 1])
        table = ClusterFrequencyTable.from_labels(codes, labels, 2)
        loo = table.similarity_matrix(exclude_labels=labels)
        assert loo[0, 0] == 0.0

    def test_similarity_object_matches_matrix(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        matrix = table.similarity_matrix()
        for i in range(toy_codes.shape[0]):
            row = table.similarity_object(toy_codes[i])
            assert np.allclose(row, matrix[i])

    def test_feature_weights_are_probabilities(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        omega = table.feature_cluster_weights()
        assert omega.shape == (3, 2)
        assert np.allclose(omega.sum(axis=0), 1.0)
        assert np.all(omega >= 0)

    def test_alpha_higher_for_discriminative_feature(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        alpha = table.inter_cluster_difference()
        # Feature 0 perfectly separates the clusters, feature 2 barely does.
        assert alpha[0, 0] > alpha[2, 0]

    def test_beta_is_compactness(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        beta = table.intra_cluster_similarity()
        assert np.all(beta >= 0) and np.all(beta <= 1.0)
        assert beta[0, 0] == pytest.approx(1.0)  # feature 0 is constant inside cluster 0

    def test_modes(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 2)
        modes = table.modes()
        assert modes[0].tolist() == [0, 0, 0]
        assert modes[1].tolist() == [2, 2, 2]

    def test_empty_cluster_mode_is_minus_one(self, toy_codes, toy_labels):
        table = ClusterFrequencyTable.from_labels(toy_codes, toy_labels, 3)
        assert np.all(table.modes()[2] == -1)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_similarity_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        n, d, k = 30, 4, 3
        codes = rng.integers(0, 4, size=(n, d))
        labels = rng.integers(0, k, size=n)
        sims = object_cluster_similarity(codes, labels, k)
        assert np.all(sims >= -1e-12)
        assert np.all(sims <= 1.0 + 1e-12)


class TestValueCooccurrence:
    def test_mutual_information_symmetric_nonnegative(self, toy_codes):
        mi = mutual_information_matrix(toy_codes)
        assert np.allclose(mi, mi.T)
        assert np.all(mi >= 0)

    def test_distance_matrices_shape_and_diagonal(self, toy_codes):
        distances = cooccurrence_value_distances(toy_codes)
        assert len(distances) == 3
        for r, D in enumerate(distances):
            assert D.shape[0] == D.shape[1]
            assert np.allclose(np.diag(D), 0.0)
            assert np.allclose(D, D.T)
            assert np.all(D >= 0) and np.all(D <= 1.0 + 1e-9)

    def test_single_feature_falls_back_to_hamming(self):
        codes = np.array([[0], [1], [2]])
        distances = cooccurrence_value_distances(codes)
        assert np.allclose(distances[0], 1 - np.eye(3))

    def test_correlated_values_are_close(self):
        # Feature 0 values 0 and 1 co-occur with identical contexts -> small distance;
        # value 2 has a different context -> larger distance.
        codes = np.array(
            [[0, 5], [1, 5], [0, 5], [1, 5], [2, 7], [2, 7], [2, 7], [2, 7]]
        )
        codes[:, 1] -= 5
        D = cooccurrence_value_distances(codes, weight_by_mutual_information=False)[0]
        assert D[0, 1] < D[0, 2]


class TestGraphBased:
    def test_graph_nodes_cover_all_values(self, toy_codes):
        graph, offsets = build_value_graph(toy_codes)
        n_values = sum(int(toy_codes[:, r].max()) + 1 for r in range(toy_codes.shape[1]))
        assert graph.number_of_nodes() == n_values

    def test_distances_properties(self, toy_codes):
        distances = graph_value_distances(toy_codes)
        for D in distances:
            assert np.allclose(np.diag(D), 0.0)
            assert np.all(D >= 0) and np.all(D <= 1.0 + 1e-9)
            assert np.allclose(D, D.T)
