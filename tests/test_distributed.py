"""Tests for the distributed-computing layer (paper Sec. III-D)."""

import numpy as np
import pytest

from repro.distributed import (
    GranularityAwareScheduler,
    MakespanModel,
    MultiGranularPartitioner,
    RoundRobinScheduler,
    intra_partition_similarity,
    load_balance,
    make_node_pool,
    node_group_consistency,
    simulate_distributed_execution,
)
from repro.distributed.simulation import ExecutionEngine, SimulationReport, make_tasks


class TestNodePool:
    def test_pool_size_and_dataset_view(self):
        pool = make_node_pool(24, random_state=0)
        assert len(pool) == 24
        ds = pool.to_dataset()
        assert ds.n_objects == 24
        assert ds.n_features == 6

    def test_throughput_positive(self):
        pool = make_node_pool(10, random_state=1)
        assert np.all(pool.throughputs() > 0)

    def test_profiles_create_structure(self):
        pool = make_node_pool(40, n_profiles=2, profile_purity=0.95, random_state=0)
        ds = pool.to_dataset()
        # Nodes of the same profile share most feature values -> few distinct rows.
        distinct_rows = np.unique(ds.codes, axis=0).shape[0]
        assert distinct_rows < 20

    def test_empty_pool_rejected(self):
        from repro.distributed.node import NodePool

        with pytest.raises(ValueError):
            NodePool().to_dataset()


class TestPartitioner:
    def test_plan_covers_all_objects(self, small_clusters):
        plan = MultiGranularPartitioner(4, random_state=0).fit_partition(small_clusters)
        assert plan.assignments.shape[0] == small_clusters.n_objects
        assert set(np.unique(plan.assignments)) <= set(range(4))

    def test_plan_is_reasonably_balanced(self, small_clusters):
        plan = MultiGranularPartitioner(4, random_state=0).fit_partition(small_clusters)
        assert load_balance(plan.assignments, 4) > 0.4

    def test_partition_preserves_locality_better_than_random(self, small_clusters):
        plan = MultiGranularPartitioner(3, random_state=0).fit_partition(small_clusters)
        rng = np.random.default_rng(0)
        random_assignment = rng.integers(0, 3, small_clusters.n_objects)
        guided = intra_partition_similarity(small_clusters, plan.assignments)
        random_quality = intra_partition_similarity(small_clusters, random_assignment)
        assert guided > random_quality

    def test_partition_indices_accessor(self, small_clusters):
        plan = MultiGranularPartitioner(2, random_state=0).fit_partition(small_clusters)
        total = sum(plan.partition_indices(p).size for p in range(2))
        assert total == small_clusters.n_objects

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            MultiGranularPartitioner(2, balance_tolerance=0.5)

    def test_more_partitions_than_micro_clusters(self, small_clusters):
        # MGCPL finds ~3 micro-clusters here; requesting 8 partitions must
        # still cover every object and keep every partition non-empty (the
        # balance tolerance forces the over-sized micro-clusters to split).
        plan = MultiGranularPartitioner(
            8, balance_tolerance=1.2, random_state=0
        ).fit_partition(small_clusters)
        assert plan.assignments.shape[0] == small_clusters.n_objects
        sizes = plan.sizes()
        assert sizes.sum() == small_clusters.n_objects
        assert (sizes > 0).all()
        assert sizes.max() <= np.ceil(1.2 * small_clusters.n_objects / 8) + 1

    def test_tight_tolerance_forces_micro_cluster_splits(self, small_clusters):
        def spans(partitioner):
            plan = partitioner.fit_partition(small_clusters)
            micro = partitioner.mgcpl_result_.level_for_k(plan.n_partitions).labels
            return [
                np.unique(plan.assignments[micro == c]).size for c in np.unique(micro)
            ], plan

        # Loose tolerance and as many partitions as micro-clusters: every
        # micro-cluster stays whole on one partition.
        loose_spans, _ = spans(
            MultiGranularPartitioner(2, balance_tolerance=10.0, random_state=0)
        )
        assert max(loose_spans) == 1
        # Tight tolerance with more partitions than micro-clusters: the
        # micro-clusters exceeding n/p must be split across partitions, and
        # the plan stays reasonably balanced.
        tight_spans, tight_plan = spans(
            MultiGranularPartitioner(3, balance_tolerance=1.0, random_state=0)
        )
        assert max(tight_spans) >= 2
        assert load_balance(tight_plan.assignments, 3) > 0.5

    def test_plan_round_trip_disjoint_and_complete(self, small_clusters):
        plan = MultiGranularPartitioner(3, random_state=1).fit_partition(small_clusters)
        parts = [plan.partition_indices(p) for p in range(3)]
        union = np.concatenate(parts)
        # Disjoint: no object appears twice; complete: the union is 0..n-1.
        assert union.size == small_clusters.n_objects
        np.testing.assert_array_equal(np.sort(union), np.arange(small_clusters.n_objects))

    def test_single_partition_degenerates_gracefully(self, tiny_clusters):
        plan = MultiGranularPartitioner(1, random_state=0).fit_partition(tiny_clusters)
        assert (plan.assignments == 0).all()


class TestSchedulers:
    def test_round_robin_assigns_all_tasks(self):
        pool = make_node_pool(8, random_state=0)
        tasks = make_tasks(40, random_state=0)
        assignment = RoundRobinScheduler().assign(tasks, pool)
        assert sum(len(v) for v in assignment.values()) == 40

    def test_granularity_aware_groups_nodes(self):
        pool = make_node_pool(24, n_profiles=3, random_state=0)
        scheduler = GranularityAwareScheduler(n_groups=3, random_state=0)
        groups = scheduler.group_nodes(pool)
        assert groups.shape[0] == 24
        assert np.unique(groups).size <= 3

    def test_grouping_is_throughput_consistent(self):
        pool = make_node_pool(32, n_profiles=4, profile_purity=0.95, random_state=0)
        scheduler = GranularityAwareScheduler(n_groups=4, random_state=0)
        groups = scheduler.group_nodes(pool)
        rng = np.random.default_rng(0)
        random_groups = rng.integers(0, 4, len(pool))
        assert node_group_consistency(pool.throughputs(), groups) >= node_group_consistency(
            pool.throughputs(), random_groups
        ) - 0.05

    def test_aware_scheduler_assigns_all_tasks(self):
        pool = make_node_pool(16, random_state=0)
        tasks = make_tasks(60, random_state=1)
        assignment = GranularityAwareScheduler(n_groups=3, random_state=0).assign(tasks, pool)
        assert sum(len(v) for v in assignment.values()) == 60

    def test_engine_backend_forwarded_to_grouping(self):
        pool = make_node_pool(12, random_state=0)
        scheduler = GranularityAwareScheduler(n_groups=2, engine="dense", random_state=0)
        groups = scheduler.group_nodes(pool)
        assert groups.shape[0] == 12
        assert scheduler.mcdc_.engine == "dense"

    def test_tie_breaking_deterministic_under_equal_demand(self):
        from repro.distributed.node import NODE_FEATURES, ComputeNode, NodePool
        from repro.distributed.scheduler import Task

        # Identical nodes listed in scrambled id order: every placement step
        # ties on accumulated demand, so only the node_id tie-break decides.
        features = {f: NODE_FEATURES[f][0] for f in NODE_FEATURES}

        def scrambled_pool(order):
            return NodePool(
                nodes=[ComputeNode(node_id=i, features=dict(features)) for i in order]
            )

        tasks = [Task(task_id=t, demand=1.0) for t in range(9)]
        a = GranularityAwareScheduler(n_groups=2, random_state=0).assign(
            tasks, scrambled_pool([2, 0, 1])
        )
        b = GranularityAwareScheduler(n_groups=2, random_state=0).assign(
            tasks, scrambled_pool([0, 1, 2])
        )
        loads_a = {nid: len(ts) for nid, ts in a.items()}
        loads_b = {nid: len(ts) for nid, ts in b.items()}
        assert loads_a == loads_b
        # First equal-demand tie goes to the smallest node_id.
        assert a[0] and a[0][0].task_id == 0


class TestSimulation:
    def test_makespan_positive_and_work_conserved(self):
        pool = make_node_pool(8, random_state=0)
        tasks = make_tasks(30, random_state=2)
        assignment = RoundRobinScheduler().assign(tasks, pool)
        report = simulate_distributed_execution(assignment, pool)
        assert report.makespan > 0
        assert report.total_work == pytest.approx(sum(t.demand for t in tasks))
        assert 0.0 <= report.idle_fraction <= 1.0

    def test_summary_keys(self):
        pool = make_node_pool(4, random_state=0)
        tasks = make_tasks(8, random_state=3)
        report = simulate_distributed_execution(RoundRobinScheduler().assign(tasks, pool), pool)
        assert {"makespan", "total_work", "idle_fraction"} == set(report.summary())

    def test_explicit_engine_matches_default(self):
        pool = make_node_pool(6, random_state=0)
        tasks = make_tasks(20, random_state=4)
        assignment = RoundRobinScheduler().assign(tasks, pool)
        default = simulate_distributed_execution(assignment, pool)
        explicit = simulate_distributed_execution(assignment, pool, engine=MakespanModel())
        assert default.makespan == explicit.makespan
        assert default.node_finish_times == explicit.node_finish_times

    def test_custom_engine_backend_plugs_in(self):
        class ConstantEngine(ExecutionEngine):
            def execute(self, assignment, pool):
                return SimulationReport(
                    makespan=1.0, total_work=2.0, node_finish_times={}, idle_fraction=0.0
                )

        pool = make_node_pool(4, random_state=0)
        tasks = make_tasks(8, random_state=5)
        assignment = RoundRobinScheduler().assign(tasks, pool)
        report = simulate_distributed_execution(assignment, pool, engine=ConstantEngine())
        assert report.makespan == 1.0 and report.total_work == 2.0

    def test_report_order_independent_of_dict_insertion(self):
        pool = make_node_pool(5, random_state=1)
        tasks = make_tasks(15, random_state=6)
        assignment = RoundRobinScheduler().assign(tasks, pool)
        reversed_assignment = dict(reversed(list(assignment.items())))
        a = simulate_distributed_execution(assignment, pool)
        b = simulate_distributed_execution(reversed_assignment, pool)
        assert a.makespan == b.makespan
        assert list(a.node_finish_times) == list(b.node_finish_times)


class TestDistributedMetrics:
    def test_load_balance_perfect(self):
        assert load_balance(np.array([0, 1, 0, 1]), 2) == 1.0

    def test_load_balance_skewed(self):
        assert load_balance(np.array([0, 0, 0, 1]), 2) == pytest.approx(2 / 3)

    def test_consistency_identical_groups(self):
        throughputs = np.array([1.0, 1.0, 2.0, 2.0])
        groups = np.array([0, 0, 1, 1])
        assert node_group_consistency(throughputs, groups) == pytest.approx(1.0)

    def test_consistency_mixed_groups_lower(self):
        throughputs = np.array([1.0, 5.0, 1.0, 5.0])
        mixed = np.array([0, 0, 1, 1])
        split = np.array([0, 1, 0, 1])
        assert node_group_consistency(throughputs, split) > node_group_consistency(
            throughputs, mixed
        )
