"""Property tests for the packed similarity engine.

Two invariants protect every consumer of :mod:`repro.engine`:

* **Incremental == rebuild** — any sequence of ``add`` / ``remove`` /
  ``move`` / ``*_many`` updates leaves the packed counts bit-identical to a
  table rebuilt from scratch for the resulting assignment.
* **Packed == reference** — the vectorised backends reproduce the numerics
  of the original per-feature loop implementation (kept as
  :class:`repro.engine.reference.LoopEngine`) for similarities (plain,
  weighted, leave-one-out), the Eqs. 15-18 weight statistics, modes and
  weighted Hamming distances — on random data with missing values and on the
  seed UCI benchmark data sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.uci.registry import load_dataset
from repro.distance.object_cluster import ClusterFrequencyTable
from repro.engine import (
    AUTO_DENSE_MAX_CELLS,
    ChunkedEngine,
    DenseEngine,
    LoopEngine,
    make_engine,
    resolve_engine_kind,
)

PACKED_KINDS = ["dense", "chunked", "compiled"]


def random_problem(seed: int, n=60, d=5, k=4, missing=0.15):
    """Random coded matrix with missing values plus a partial assignment."""
    rng = np.random.default_rng(seed)
    cats = [int(rng.integers(2, 6)) for _ in range(d)]
    codes = np.stack([rng.integers(0, m, size=n) for m in cats], axis=1)
    codes[rng.random((n, d)) < missing] = -1
    labels = rng.integers(-1, k, size=n)
    return codes, cats, labels, rng


def build_pair(kind: str, codes, cats, k, labels):
    kwargs = {"chunk_size": 17} if kind == "chunked" else {}
    packed = make_engine(codes, cats, k, kind=kind, labels=labels, **kwargs)
    reference = make_engine(codes, cats, k, kind="loop", labels=labels)
    return packed, reference


def assert_state_equal(engine, reference):
    """Packed counts must equal the reference's per-feature tables exactly."""
    assert np.array_equal(engine.sizes, reference.sizes)
    assert np.array_equal(engine.valid_counts, reference.valid.T)
    for r, start in enumerate(engine.offsets):
        segment = engine.packed[:, start : start + engine.n_categories[r]]
        assert np.array_equal(segment, reference.counts[r])


class TestIncrementalMatchesRebuild:
    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_update_sequence_is_bit_identical_to_rebuild(self, kind, seed):
        codes, cats, labels, rng = random_problem(seed)
        n, k = codes.shape[0], 4
        engine = make_engine(codes, cats, k, kind=kind, labels=labels)
        current = labels.copy()

        for _ in range(30):
            op = rng.integers(0, 3)
            i = int(rng.integers(0, n))
            if op == 0 and current[i] < 0:          # add an unassigned object
                target = int(rng.integers(0, k))
                engine.add(i, target)
                current[i] = target
            elif op == 1 and current[i] >= 0:       # remove an assigned object
                engine.remove(i, int(current[i]))
                current[i] = -1
            elif op == 2 and current[i] >= 0:       # move between clusters
                target = int(rng.integers(0, k))
                engine.move(i, int(current[i]), target)
                current[i] = target

        rebuilt = make_engine(codes, cats, k, kind=kind, labels=current)
        assert np.array_equal(engine.packed, rebuilt.packed)
        assert np.array_equal(engine.valid_counts, rebuilt.valid_counts)
        assert np.array_equal(engine.sizes, rebuilt.sizes)

    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bulk_moves_are_bit_identical_to_rebuild(self, kind, seed):
        codes, cats, labels, rng = random_problem(seed)
        n, k = codes.shape[0], 4
        engine = make_engine(codes, cats, k, kind=kind, labels=labels)

        idx = rng.choice(n, size=n // 2, replace=False)
        targets = rng.integers(0, k, size=idx.size)
        engine.move_many(idx, labels[idx], targets)
        new_labels = labels.copy()
        new_labels[idx] = targets

        rebuilt = make_engine(codes, cats, k, kind=kind, labels=new_labels)
        assert np.array_equal(engine.packed, rebuilt.packed)
        assert np.array_equal(engine.valid_counts, rebuilt.valid_counts)
        assert np.array_equal(engine.sizes, rebuilt.sizes)

    def test_remove_from_empty_cluster_raises(self):
        codes, cats, labels, _ = random_problem(0, k=3)
        engine = make_engine(codes, cats, 5, kind="dense", labels=np.zeros_like(labels))
        with pytest.raises(ValueError):
            engine.remove(0, 4)

    def test_remove_many_from_empty_cluster_raises(self):
        codes, cats, labels, _ = random_problem(1, k=3)
        engine = make_engine(codes, cats, 5, kind="dense", labels=np.zeros_like(labels))
        with pytest.raises(ValueError, match="already empty"):
            engine.remove_many([0, 1], [4, 4])


class TestPackedMatchesReference:
    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_similarities_match_on_random_missing_data(self, kind, seed):
        codes, cats, labels, rng = random_problem(seed)
        k = 4
        engine, reference = build_pair(kind, codes, cats, k, labels)
        omega = rng.random((codes.shape[1], k))

        assert np.allclose(
            engine.similarity_matrix(), reference.similarity_matrix(), atol=1e-12
        )
        assert np.allclose(
            engine.similarity_matrix(feature_weights=omega, exclude_labels=labels),
            reference.similarity_matrix(feature_weights=omega, exclude_labels=labels),
            atol=1e-12,
        )
        i = int(rng.integers(0, codes.shape[0]))
        assert np.allclose(
            engine.similarity_object(codes[i], omega, int(labels[i])),
            reference.similarity_object(codes[i], omega, int(labels[i])),
            atol=1e-12,
        )

    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_weight_statistics_and_modes_match(self, kind, seed):
        codes, cats, labels, _ = random_problem(seed)
        engine, reference = build_pair(kind, codes, cats, 4, labels)

        assert np.allclose(
            engine.inter_cluster_difference(),
            reference.inter_cluster_difference(),
            atol=1e-12,
        )
        assert np.allclose(
            engine.intra_cluster_similarity(),
            reference.intra_cluster_similarity(),
            atol=1e-12,
        )
        assert np.allclose(
            engine.feature_cluster_weights(),
            reference.feature_cluster_weights(),
            atol=1e-12,
        )
        assert np.array_equal(engine.modes(), reference.modes())

    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_hamming_distances_match(self, kind, seed):
        codes, cats, labels, rng = random_problem(seed)
        d = codes.shape[1]
        engine, reference = build_pair(kind, codes, cats, 4, labels)
        refs = np.stack([rng.integers(0, m, size=6) for m in cats], axis=1)
        theta = rng.random(d)
        assert np.allclose(
            engine.hamming_distances(refs, theta),
            reference.hamming_distances(refs, theta),
            atol=1e-12,
        )
        assert np.allclose(
            engine.hamming_distances(refs), reference.hamming_distances(refs), atol=1e-12
        )


@pytest.mark.parametrize("abbrev", ["Car", "Con", "Vot", "Bal"])
@pytest.mark.parametrize("kind", PACKED_KINDS)
def test_parity_on_seed_uci_datasets(abbrev, kind):
    """Packed engines match the reference numerics on the Table II data sets.

    Congressional-style missing values are injected into a copy of every
    data set so the ``-1`` handling is exercised on real vocabularies too.
    """
    ds = load_dataset(abbrev)
    rng = np.random.default_rng(99)
    codes = ds.codes.copy()
    codes[rng.random(codes.shape) < 0.08] = -1
    cats = list(ds.n_categories)
    k = 5
    labels = rng.integers(0, k, size=codes.shape[0])
    omega = rng.random((codes.shape[1], k))

    engine, reference = build_pair(kind, codes, cats, k, labels)
    assert_state_equal(engine, reference)
    assert np.allclose(
        engine.similarity_matrix(feature_weights=omega, exclude_labels=labels),
        reference.similarity_matrix(feature_weights=omega, exclude_labels=labels),
        atol=1e-12,
    )
    assert np.allclose(
        engine.feature_cluster_weights(), reference.feature_cluster_weights(), atol=1e-12
    )
    assert np.array_equal(engine.modes(), reference.modes())


class TestBackendSelection:
    def test_auto_resolves_by_one_hot_footprint(self):
        assert resolve_engine_kind("auto", 100, 50) == "dense"
        assert resolve_engine_kind("auto", AUTO_DENSE_MAX_CELLS, 2) == "chunked"
        assert resolve_engine_kind("dense", AUTO_DENSE_MAX_CELLS, 2) == "dense"

    def test_make_engine_kinds(self):
        codes, cats, labels, _ = random_problem(3)
        assert isinstance(make_engine(codes, cats, 4, kind="dense"), DenseEngine)
        assert isinstance(make_engine(codes, cats, 4, kind="chunked"), ChunkedEngine)
        assert isinstance(make_engine(codes, cats, 4, kind="loop"), LoopEngine)

    def test_unknown_kind_rejected(self):
        codes, cats, _, _ = random_problem(4)
        with pytest.raises(ValueError, match="engine kind"):
            make_engine(codes, cats, 4, kind="gpu")

    def test_vocabulary_violation_rejected(self):
        codes = np.array([[0, 3]])
        with pytest.raises(ValueError, match="vocabular"):
            make_engine(codes, [1, 2], 2, kind="dense")

    def test_external_codes_outside_vocab_rejected(self):
        """Out-of-vocabulary values would bleed into the next feature's
        packed columns, so they must raise instead of silently mismatching."""
        codes, cats, labels, _ = random_problem(7)
        engine = make_engine(codes, cats, 4, kind="dense", labels=labels)
        bad = codes[:3].copy()
        bad[0, 0] = cats[0]
        with pytest.raises(ValueError, match="vocabular"):
            engine.similarity_matrix(codes=bad)
        with pytest.raises(ValueError, match="vocabular"):
            engine.hamming_distances(bad)

    def test_chunked_engine_streams_in_blocks(self):
        codes, cats, labels, _ = random_problem(11, n=100)
        chunked = make_engine(codes, cats, 4, kind="chunked", labels=labels, chunk_size=7)
        dense = make_engine(codes, cats, 4, kind="dense", labels=labels)
        assert np.allclose(chunked.similarity_matrix(), dense.similarity_matrix(), atol=1e-12)


class TestCompatibilityShim:
    def test_cluster_frequency_table_is_packed(self):
        codes, cats, labels, _ = random_problem(5)
        table = ClusterFrequencyTable.from_labels(codes, labels, 4, cats)
        assert isinstance(table, DenseEngine)

    def test_counts_and_valid_are_live_views(self):
        codes, cats, labels, _ = random_problem(6)
        table = ClusterFrequencyTable.from_labels(codes, labels, 4, cats)
        counts_before = [c.copy() for c in table.counts]
        i = int(np.flatnonzero(labels < 0)[0]) if (labels < 0).any() else 0
        if labels[i] >= 0:
            table.remove(i, int(labels[i]))
        table.add(i, 2)
        changed = any(
            not np.array_equal(before, after)
            for before, after in zip(counts_before, table.counts)
        )
        assert changed
        assert np.array_equal(table.valid, table.valid_counts.T)
