"""Bit-exactness tests for the compiled sweep kernels and the one-hot cache.

:class:`~repro.engine.compiled.CompiledEngine` promises *bit-identical*
results to the :class:`~repro.engine.reference.LoopEngine` oracle — not just
``allclose`` — because its kernels replicate the reference's floating-point
operation order exactly.  These tests pin that contract on random problems
with missing values, on the seed UCI data sets, through the fused
``competitive_sweep`` path of :func:`repro.core.sync.mgcpl_sweep_local`, and
through a full MGCPL fit.  They run with or without numba: absent numba the
kernels execute interpreted through the identity ``njit`` fallback, so the
contract is enforced on every CI leg.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.compiled as compiled_mod
from repro.core.mgcpl import MGCPL, cluster_weight_from_delta, winning_ratio
from repro.core.sync import ShardWorker, SweepBroadcast
from repro.data.dataset import CategoricalDataset
from repro.data.uci.registry import load_dataset
from repro.engine import (
    ENGINES,
    NUMBA_AVAILABLE,
    CompiledEngine,
    LoopEngine,
    OneHotCache,
    make_engine,
    resolve_engine_kind,
)
from repro.engine.compiled import warm_up_kernels


def random_problem(seed: int, n=80, d=6, k=5, missing=0.15):
    rng = np.random.default_rng(seed)
    cats = [int(rng.integers(2, 7)) for _ in range(d)]
    codes = np.stack([rng.integers(0, m, size=n) for m in cats], axis=1)
    codes[rng.random((n, d)) < missing] = -1
    labels = rng.integers(0, k, size=n)
    return codes, cats, labels, rng


def build_pair(codes, cats, k, labels):
    compiled = CompiledEngine(codes, cats, k)
    compiled.rebuild(labels)
    loop = LoopEngine(codes, cats, k)
    loop.rebuild(labels)
    return compiled, loop


class TestKernelBitExactness:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_similarity_matrix_exact(self, seed):
        codes, cats, labels, rng = random_problem(seed)
        compiled, loop = build_pair(codes, cats, 5, labels)
        omega = rng.random((codes.shape[1], 5))
        for fw in (None, omega):
            for excl in (None, labels):
                assert np.array_equal(
                    compiled.similarity_matrix(feature_weights=fw, exclude_labels=excl),
                    loop.similarity_matrix(feature_weights=fw, exclude_labels=excl),
                )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_hamming_distances_exact(self, seed):
        codes, cats, labels, rng = random_problem(seed)
        compiled, loop = build_pair(codes, cats, 5, labels)
        refs = np.stack([rng.integers(0, m, size=6) for m in cats], axis=1)
        refs[rng.random(refs.shape) < 0.2] = -1
        theta = rng.random(codes.shape[1])
        assert np.array_equal(
            compiled.hamming_distances(refs, theta), loop.hamming_distances(refs, theta)
        )
        assert np.array_equal(compiled.hamming_distances(refs), loop.hamming_distances(refs))

    @pytest.mark.parametrize("abbrev", ["Vot", "Bal"])
    def test_uci_datasets_exact(self, abbrev):
        """Vot (native missing values) and Bal, with extra missing injected."""
        ds = load_dataset(abbrev)
        rng = np.random.default_rng(99)
        codes = ds.codes.copy()
        codes[rng.random(codes.shape) < 0.08] = -1
        k = 5
        labels = rng.integers(0, k, size=codes.shape[0])
        omega = rng.random((codes.shape[1], k))
        compiled, loop = build_pair(codes, list(ds.n_categories), k, labels)
        assert np.array_equal(compiled.packed, np.concatenate(loop.counts, axis=1))
        assert np.array_equal(
            compiled.similarity_matrix(feature_weights=omega, exclude_labels=labels),
            loop.similarity_matrix(feature_weights=omega, exclude_labels=labels),
        )

    @pytest.mark.parametrize("seed", [0, 11])
    def test_fused_sweep_matches_numpy_path(self, seed):
        """The ``competitive_sweep`` fast path returns the same ShardUpdate."""
        codes, cats, labels, rng = random_problem(seed, n=150)
        k = 5
        worker_loop = ShardWorker(codes, cats, engine="loop")
        worker_comp = ShardWorker(codes, cats, engine="compiled")
        state_l = worker_loop.begin_epoch(k, labels)
        state_c = worker_comp.begin_epoch(k, labels)
        assert np.array_equal(state_l.packed, state_c.packed)
        blocked = np.zeros(k, dtype=bool)
        blocked[2] = True
        broadcast = SweepBroadcast(
            state=state_l,
            u=cluster_weight_from_delta(np.ones(k)),
            rho=winning_ratio(rng.random(k)),
            omega=rng.random((codes.shape[1], k)),
            blocked=blocked,
        )
        up_l = worker_loop.sweep(broadcast)
        up_c = worker_comp.sweep(broadcast)
        for field in (
            "labels",
            "win_counts",
            "win_gain",
            "rival_pen",
            "rival_counts",
            "win_sim_total",
        ):
            assert np.array_equal(getattr(up_l, field), getattr(up_c, field)), field
        assert np.array_equal(up_l.state.packed, up_c.state.packed)
        assert up_l.changed == up_c.changed

    def test_fused_sweep_all_blocked_and_unweighted(self):
        codes, cats, labels, _ = random_problem(5, n=70)
        k = 5
        worker_loop = ShardWorker(codes, cats, engine="loop")
        worker_comp = ShardWorker(codes, cats, engine="compiled")
        state = worker_loop.begin_epoch(k, labels)
        worker_comp.begin_epoch(k, labels)
        broadcast = SweepBroadcast(
            state=state,
            u=np.ones(k),
            rho=np.zeros(k),
            omega=None,
            blocked=np.ones(k, dtype=bool),
        )
        up_l = worker_loop.sweep(broadcast)
        up_c = worker_comp.sweep(broadcast)
        assert np.array_equal(up_l.labels, up_c.labels)
        assert np.array_equal(up_l.win_sim_total, up_c.win_sim_total)

    def test_full_mgcpl_fit_bit_identical(self):
        codes, cats, _, _ = random_problem(7, n=140, d=6, missing=0.1)
        ds = CategoricalDataset.from_codes(codes, n_categories=cats)
        fit_loop = MGCPL(k0=6, random_state=3, engine="loop", max_epochs=4).fit(ds)
        fit_comp = MGCPL(k0=6, random_state=3, engine="compiled", max_epochs=4).fit(ds)
        assert np.array_equal(fit_loop.labels_, fit_comp.labels_)
        assert np.array_equal(fit_loop.encoding_, fit_comp.encoding_)

    def test_warm_up_kernels(self):
        assert warm_up_kernels() is NUMBA_AVAILABLE


class TestAutoSelection:
    def test_compiled_registered(self):
        assert ENGINES["compiled"] is CompiledEngine

    def test_auto_prefers_compiled_with_numba(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "NUMBA_AVAILABLE", True)
        assert resolve_engine_kind("auto", 1000, 50) == "compiled"

    def test_auto_falls_back_without_numba(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "NUMBA_AVAILABLE", False)
        assert resolve_engine_kind("auto", 1000, 50) == "dense"

    def test_explicit_kind_wins(self, monkeypatch):
        monkeypatch.setattr(compiled_mod, "NUMBA_AVAILABLE", True)
        assert resolve_engine_kind("dense", 1000, 50) == "dense"
        assert resolve_engine_kind("loop", 1000, 50) == "loop"


class TestOneHotCache:
    def test_hit_requires_same_array_and_vocab(self):
        cache = OneHotCache()
        codes, cats, labels, _ = random_problem(0)
        a = make_engine(codes, cats, 5, kind="dense", labels=labels, onehot_cache=cache)
        a.similarity_matrix()
        assert cache.misses == 1
        b = make_engine(codes, cats, 5, kind="dense", labels=labels, onehot_cache=cache)
        b.similarity_matrix()
        assert (cache.hits, cache.misses) == (1, 1)
        # A copy is a different array: identity keying must not hit.
        c = make_engine(
            codes.copy(), cats, 5, kind="dense", labels=labels, onehot_cache=cache
        )
        c.similarity_matrix()
        assert cache.misses == 2

    def test_capacity_eviction(self):
        cache = OneHotCache(capacity=1)
        codes_a, cats, labels, _ = random_problem(1)
        codes_b = codes_a.copy()
        for arr in (codes_a, codes_b, codes_a):
            engine = make_engine(arr, cats, 5, kind="dense", labels=labels, onehot_cache=cache)
            engine.similarity_matrix()
        # FIFO capacity 1: codes_a was evicted by codes_b, so the third
        # build misses again.
        assert cache.misses == 3 and cache.hits == 0

    def test_cached_encoding_is_equivalent(self):
        cache = OneHotCache()
        codes, cats, labels, rng = random_problem(2)
        omega = rng.random((codes.shape[1], 5))
        first = make_engine(codes, cats, 5, kind="dense", labels=labels, onehot_cache=cache)
        uncached = make_engine(codes, cats, 5, kind="dense", labels=labels)
        assert np.array_equal(
            first.similarity_matrix(feature_weights=omega),
            uncached.similarity_matrix(feature_weights=omega),
        )
        second = make_engine(codes, cats, 5, kind="dense", labels=labels, onehot_cache=cache)
        assert np.array_equal(
            second.similarity_matrix(feature_weights=omega),
            uncached.similarity_matrix(feature_weights=omega),
        )
        assert cache.hits >= 1

    def test_loop_engine_ignores_cache_kwarg(self):
        codes, cats, labels, _ = random_problem(3)
        engine = make_engine(codes, cats, 5, kind="loop", labels=labels, onehot_cache=OneHotCache())
        assert isinstance(engine, LoopEngine)

    def test_dataset_cache_reused_across_fits(self):
        codes, cats, _, _ = random_problem(4, n=120)
        ds = CategoricalDataset.from_codes(codes, n_categories=cats)
        cache = ds.onehot_cache()
        assert ds.onehot_cache() is cache
        MGCPL(k0=5, random_state=1, engine="dense", max_epochs=3).fit(ds)
        hits1, misses1 = cache.hits, cache.misses
        assert misses1 >= 1
        MGCPL(k0=5, random_state=2, engine="dense", max_epochs=3).fit(ds)
        # The restart re-encodes nothing: same misses, strictly more hits.
        assert cache.misses == misses1
        assert cache.hits > hits1
