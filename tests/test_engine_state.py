"""Property tests for EngineState: snapshot/restore round trips and the
shard-then-merge exactness the sharded runtime rests on."""

import numpy as np
import pytest

from repro.core.sync import contiguous_shards
from repro.engine import EngineState, make_engine

KINDS = ("dense", "chunked", "loop")


def _problem(seed: int, n: int = 120, d: int = 5, k: int = 7, missing: float = 0.1):
    rng = np.random.default_rng(seed)
    n_categories = [int(m) for m in rng.integers(2, 6, size=d)]
    codes = np.column_stack(
        [rng.integers(0, m, size=n) for m in n_categories]
    ).astype(np.int64)
    if missing:
        codes[rng.random((n, d)) < missing] = -1
    labels = rng.integers(0, k, size=n).astype(np.int64)
    return codes, n_categories, labels, k


class TestSnapshotRestore:
    @pytest.mark.parametrize("kind", KINDS)
    def test_round_trip_is_bit_identical(self, kind):
        codes, cats, labels, k = _problem(0)
        engine = make_engine(codes, cats, k, kind=kind, labels=labels)
        state = engine.snapshot()

        fresh = make_engine(codes, cats, k, kind=kind)
        fresh.restore(state)
        np.testing.assert_array_equal(fresh.snapshot().packed, state.packed)
        np.testing.assert_array_equal(
            fresh.similarity_matrix(exclude_labels=labels),
            engine.similarity_matrix(exclude_labels=labels),
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_snapshot_is_a_copy(self, kind):
        codes, cats, labels, k = _problem(1)
        engine = make_engine(codes, cats, k, kind=kind, labels=labels)
        state = engine.snapshot()
        before = state.packed.copy()
        engine.move(0, int(labels[0]), int((labels[0] + 1) % k))
        np.testing.assert_array_equal(state.packed, before)

    def test_snapshots_interchangeable_across_backends(self):
        codes, cats, labels, k = _problem(2)
        dense = make_engine(codes, cats, k, kind="dense", labels=labels)
        loop = make_engine(codes, cats, k, kind="loop", labels=labels)
        np.testing.assert_array_equal(dense.snapshot().packed, loop.snapshot().packed)
        np.testing.assert_array_equal(dense.snapshot().sizes, loop.snapshot().sizes)

        # Restoring a dense snapshot into the loop engine reproduces its stats.
        fresh_loop = make_engine(codes, cats, k, kind="loop")
        fresh_loop.restore(dense.snapshot())
        np.testing.assert_allclose(
            fresh_loop.similarity_matrix(), loop.similarity_matrix(), atol=1e-12
        )

    def test_restore_rejects_wrong_layout(self):
        codes, cats, labels, k = _problem(3)
        engine = make_engine(codes, cats, k, kind="dense", labels=labels)
        with pytest.raises(ValueError):
            engine.restore(EngineState.zeros(cats, k + 1))
        with pytest.raises(ValueError):
            engine.restore(EngineState.zeros([m + 1 for m in cats], k))


class TestShardMerge:
    @pytest.mark.parametrize("n_shards", [2, 3, 4, 5, 6, 7, 8])
    @pytest.mark.parametrize("kind", ["dense", "chunked"])
    def test_merge_bit_identical_to_single_process(self, n_shards, kind):
        codes, cats, labels, k = _problem(n_shards, n=233)
        full = make_engine(codes, cats, k, kind=kind, labels=labels).snapshot()

        shard_states = []
        for idx in contiguous_shards(codes.shape[0], n_shards):
            shard = make_engine(codes[idx], cats, k, kind=kind, labels=labels[idx])
            shard_states.append(shard.snapshot())
        merged = EngineState.merge_all(shard_states)

        np.testing.assert_array_equal(merged.packed, full.packed)
        np.testing.assert_array_equal(merged.valid_counts, full.valid_counts)
        np.testing.assert_array_equal(merged.sizes, full.sizes)

    def test_merge_mixed_backends_exact(self):
        codes, cats, labels, k = _problem(9, n=150)
        idx_a, idx_b = contiguous_shards(codes.shape[0], 2)
        a = make_engine(codes[idx_a], cats, k, kind="loop", labels=labels[idx_a])
        b = make_engine(codes[idx_b], cats, k, kind="dense", labels=labels[idx_b])
        merged = a.snapshot().merge(b.snapshot())
        full = make_engine(codes, cats, k, kind="dense", labels=labels).snapshot()
        np.testing.assert_array_equal(merged.packed, full.packed)

    def test_merge_rejects_incompatible_states(self):
        _, cats, _, k = _problem(4)
        with pytest.raises(ValueError):
            EngineState.zeros(cats, k).merge(EngineState.zeros(cats, k + 1))
        with pytest.raises(ValueError):
            EngineState.merge_all([])

    def test_merge_does_not_mutate_inputs(self):
        codes, cats, labels, k = _problem(5)
        engine = make_engine(codes, cats, k, kind="dense", labels=labels)
        state = engine.snapshot()
        before = state.packed.copy()
        state.merge(state)
        np.testing.assert_array_equal(state.packed, before)


class TestCountOnlyStatistics:
    @pytest.mark.parametrize("kind", KINDS)
    def test_state_stats_match_engine(self, kind):
        codes, cats, labels, k = _problem(6)
        engine = make_engine(codes, cats, k, kind=kind, labels=labels)
        state = engine.snapshot()
        np.testing.assert_allclose(
            state.feature_cluster_weights(), engine.feature_cluster_weights(), atol=1e-12
        )
        np.testing.assert_array_equal(state.modes(), engine.modes())

    def test_merged_state_weights_match_full_engine(self):
        codes, cats, labels, k = _problem(7, n=200)
        shard_states = [
            make_engine(codes[idx], cats, k, kind="dense", labels=labels[idx]).snapshot()
            for idx in contiguous_shards(codes.shape[0], 4)
        ]
        merged = EngineState.merge_all(shard_states)
        full = make_engine(codes, cats, k, kind="dense", labels=labels)
        np.testing.assert_array_equal(
            merged.feature_cluster_weights(), full.feature_cluster_weights()
        )

    def test_state_is_picklable(self):
        import pickle

        codes, cats, labels, k = _problem(8)
        state = make_engine(codes, cats, k, kind="dense", labels=labels).snapshot()
        clone = pickle.loads(pickle.dumps(state))
        np.testing.assert_array_equal(clone.packed, state.packed)
        assert clone.n_categories == state.n_categories
