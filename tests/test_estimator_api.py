"""The v2 estimator contract, exercised over every registry entry.

Covers: out-of-sample ``predict`` (nearest weighted-Hamming mode, unseen
codes -> missing), ``save``/``load`` round trips through ``EngineState``
snapshots with bit-identical predictions, ``clone`` independence, and the
exact ``partial_fit`` / ``ingest`` streaming semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CAME, MCDC, MGCPL, BaseClusterer, coerce_codes, codes_in_vocabulary
from repro.core.assignment import AssignmentModel
from repro.data.generators import make_categorical_clusters
from repro.distributed.rpc import local_worker_pool
from repro.distributed.runtime import ShardedMGCPL
from repro.engine import EngineState, make_engine, state_from_labels
from repro.persistence import load_model, save_model
from repro.registry import make_clusterer, registered_specs

#: Per-entry overrides so every method resolves the generator's three crisp
#: clusters (and is therefore exactly mode-consistent on the training data).
FIT_OVERRIDES = {
    "competitive": {"n_initial_clusters": 5},
    "fkmawcw": {"n_init": 5},
    # seed picked so the fuzzy final stage resolves all three crisp clusters
    "mcdc+fkmawcw": {"random_state": 1},
}


def _assert_params_equal(a, b):
    """Param-dict equality where nested estimators compare by their params."""
    assert set(a) == set(b)
    for key, value in a.items():
        if isinstance(value, BaseClusterer):
            assert isinstance(b[key], BaseClusterer)
            assert value is not b[key]  # clone() must not share nested estimators
            _assert_params_equal(value.get_params(), b[key].get_params())
        else:
            assert value == b[key]


def _contract_params(spec, request=None):
    params = dict(spec.example_params)
    if "n_clusters" in params:
        params["n_clusters"] = 3
    params.update(FIT_OVERRIDES.get(spec.name, {}))
    if spec.cls is None or "random_state" in spec.cls._get_param_names():
        params.setdefault("random_state", 0)
    if "hosts" in params and request is not None:
        # The @tcp entries carry placeholder addresses in example_params;
        # swap in the module's live loopback workers so their fits are real
        # multi-host sessions.
        params["hosts"] = list(request.getfixturevalue("tcp_hosts"))
    return params


@pytest.fixture(scope="module")
def tcp_hosts():
    """Two loopback `repro worker` servers backing the @tcp registry entries."""
    with local_worker_pool(2) as hosts:
        yield hosts


@pytest.fixture(scope="module")
def train_dataset():
    return make_categorical_clusters(
        n_objects=160, n_features=6, n_clusters=3, n_categories=4,
        purity=0.97, random_state=7, name="estimator-train",
    )


@pytest.fixture(scope="module")
def heldout_codes():
    return make_categorical_clusters(
        n_objects=48, n_features=6, n_clusters=3, n_categories=4,
        purity=0.97, random_state=8, name="estimator-heldout",
    ).codes


ALL_SPECS = registered_specs()


@pytest.mark.parametrize("spec", ALL_SPECS, ids=[s.name for s in ALL_SPECS])
class TestContractOverRegistry:
    def test_fit_save_load_predict(self, spec, train_dataset, heldout_codes, tmp_path, request):
        model = make_clusterer(spec.name, **_contract_params(spec, request))
        model.fit(train_dataset)

        # predict on the training data reproduces the fitted partition
        np.testing.assert_array_equal(model.predict(train_dataset), model.labels_)

        # held-out rows get valid cluster ids
        held = model.predict(heldout_codes)
        assert held.shape == (heldout_codes.shape[0],)
        assert held.min() >= 0 and held.max() < model.n_clusters_

        # save -> load -> bit-identical predictions on train and held-out
        path = tmp_path / f"{spec.name.replace('@', '_at_')}.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert type(loaded) is type(model)
        assert loaded.n_clusters_ == model.n_clusters_
        np.testing.assert_array_equal(loaded.labels_, model.labels_)
        np.testing.assert_array_equal(loaded.predict(heldout_codes), held)
        np.testing.assert_array_equal(
            loaded.predict(train_dataset), model.predict(train_dataset)
        )

    def test_clone_is_unfitted_and_independent(self, spec, train_dataset, request):
        model = make_clusterer(spec.name, **_contract_params(spec, request))
        clone = model.clone()
        assert clone is not model
        _assert_params_equal(clone.get_params(), model.get_params())
        assert clone.labels_ is None

        clone.fit(train_dataset)
        # fitting the clone must not leak any fitted state into the original
        assert model.labels_ is None
        assert model.assignment_model_ is None
        with pytest.raises(RuntimeError):
            model.predict(train_dataset)


class TestPredictSemantics:
    def test_unseen_codes_treated_as_missing(self, train_dataset):
        model = MCDC(n_clusters=3, random_state=0).fit(train_dataset)
        base = np.array(train_dataset.codes[:8], copy=True)
        reference = model.predict(base)

        # a code far outside the vocabulary must behave exactly like missing
        unseen = base.copy()
        unseen[:, 0] = 99
        missing = base.copy()
        missing[:, 0] = -1
        np.testing.assert_array_equal(model.predict(unseen), model.predict(missing))
        np.testing.assert_array_equal(
            model.assignment_model_.coerce(unseen), model.assignment_model_.coerce(missing)
        )
        # and the clean rows are untouched by the coercion
        np.testing.assert_array_equal(model.assignment_model_.coerce(base), base)
        assert reference.shape == (8,)

    def test_predict_requires_fit(self):
        model = MCDC(n_clusters=3, random_state=0)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((4, 6), dtype=np.int64))

    def test_came_uses_theta_weights(self, train_dataset):
        came = CAME(n_clusters=3, random_state=0).fit(train_dataset)
        assert came.assignment_model_.feature_weights is not None
        np.testing.assert_allclose(
            came.assignment_model_.feature_weights, came.feature_weights_
        )


class TestPartialFit:
    """partial_fit over batches must equal fit on the concatenation, exactly."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: MGCPL(random_state=5),
            lambda: CAME(n_clusters=3, random_state=5),
            lambda: MCDC(n_clusters=3, random_state=5),
        ],
        ids=["mgcpl", "came", "mcdc"],
    )
    def test_two_batches_equal_concatenated_fit(self, factory, train_dataset):
        X = train_dataset.codes
        b1, b2 = X[:70], X[70:]

        reference = factory().fit(X)
        streamed = factory().partial_fit(b1).partial_fit(b2)

        np.testing.assert_array_equal(streamed.labels_, reference.labels_)
        assert streamed.n_clusters_ == reference.n_clusters_
        assert streamed.n_batches_seen_ == 2
        state_a = streamed.assignment_model_.state
        state_b = reference.assignment_model_.state
        np.testing.assert_array_equal(state_a.packed, state_b.packed)
        np.testing.assert_array_equal(state_a.sizes, state_b.sizes)

    def test_sharded_mgcpl_matches_serial_fit_bit_identically(self, train_dataset):
        """The acceptance criterion: k streamed batches == one serial fit."""
        X = train_dataset.codes
        batches = [X[:50], X[50:90], X[90:]]

        serial = MGCPL(random_state=11).fit(X)
        sharded = ShardedMGCPL(n_shards=1, backend="serial", random_state=11)
        for batch in batches:
            sharded.partial_fit(batch)

        np.testing.assert_array_equal(sharded.labels_, serial.labels_)
        assert sharded.kappa_ == serial.kappa_
        np.testing.assert_array_equal(
            sharded.assignment_model_.state.packed, serial.assignment_model_.state.packed
        )

    def test_sharded_mgcpl_multi_shard_self_consistent(self, train_dataset):
        X = train_dataset.codes
        streamed = ShardedMGCPL(n_shards=3, backend="serial", random_state=11)
        streamed.partial_fit(X[:80])
        streamed.partial_fit(X[80:])
        refit = ShardedMGCPL(n_shards=3, backend="serial", random_state=11).fit(X)
        np.testing.assert_array_equal(streamed.labels_, refit.labels_)

    def test_mismatched_width_rejected(self, train_dataset):
        model = MGCPL(random_state=0).partial_fit(train_dataset.codes[:40])
        with pytest.raises(ValueError):
            model.partial_fit(train_dataset.codes[:10, :3])

    def test_fit_resets_the_stream(self, train_dataset):
        """An intervening fit() discards the partial_fit buffer entirely."""
        X = train_dataset.codes
        model = MGCPL(random_state=3)
        model.partial_fit(X[:40])
        model.fit(X[40:80])          # full fit: stream must reset
        model.partial_fit(X[80:120])

        # the stream now holds only the post-fit batch, not the pre-fit one
        assert model.n_batches_seen_ == 1
        fresh = MGCPL(random_state=3).fit(X[80:120])
        np.testing.assert_array_equal(model.labels_, fresh.labels_)


class TestIngest:
    def test_ingest_extends_labels_and_merges_counts(self, train_dataset, heldout_codes):
        model = MCDC(n_clusters=3, random_state=0).fit(train_dataset)
        n_train = model.labels_.shape[0]
        before = model.assignment_model_.state.copy()

        batch_labels = model.ingest(heldout_codes)
        assert model.labels_.shape[0] == n_train + heldout_codes.shape[0]
        np.testing.assert_array_equal(model.labels_[n_train:], batch_labels)

        # merged statistics == prior counts + exact delta of the new batch
        delta = state_from_labels(
            heldout_codes, before.n_categories, batch_labels, before.n_clusters
        )
        expected = before.merge(delta)
        np.testing.assert_array_equal(model.assignment_model_.state.packed, expected.packed)
        np.testing.assert_array_equal(model.assignment_model_.state.sizes, expected.sizes)

    def test_ingest_requires_fit(self, heldout_codes):
        with pytest.raises(RuntimeError):
            MCDC(n_clusters=3, random_state=0).ingest(heldout_codes)


class TestBaseHelpers:
    def test_coerce_codes_matches_per_column_loop(self, rng):
        codes = rng.integers(-1, 7, size=(50, 5))
        coerced, n_categories = coerce_codes(codes)
        expected = [int(max(codes[:, r].max(), 0)) + 1 for r in range(codes.shape[1])]
        assert n_categories == expected
        np.testing.assert_array_equal(coerced, codes)

    def test_coerce_codes_empty_and_all_missing(self):
        with pytest.raises(ValueError):
            coerce_codes(np.empty((0, 3), dtype=np.int64))
        _, n_cat = coerce_codes(np.full((4, 2), -1, dtype=np.int64))
        assert n_cat == [1, 1]

    def test_codes_in_vocabulary(self):
        codes = np.array([[0, 5, -3], [2, 1, 0]], dtype=np.int64)
        out = codes_in_vocabulary(codes, [3, 4, 2])
        np.testing.assert_array_equal(out, [[0, -1, -1], [2, 1, 0]])

    def test_fit_predict_checks_fitted_without_assert(self, train_dataset):
        class Misbehaving(BaseClusterer):
            def _fit(self, X):
                return self  # never sets labels_

        with pytest.raises(RuntimeError, match="has not been fitted"):
            Misbehaving().fit_predict(train_dataset)

    def test_state_from_labels_matches_engine_snapshot(self, rng):
        codes = rng.integers(-1, 4, size=(120, 5))
        _, n_categories = coerce_codes(codes)
        labels = rng.integers(0, 6, size=120)
        engine = make_engine(codes, n_categories, 6, kind="dense", labels=labels)
        direct = state_from_labels(codes, n_categories, labels, 6)
        snap = engine.snapshot()
        np.testing.assert_array_equal(direct.packed, snap.packed)
        np.testing.assert_array_equal(direct.valid_counts, snap.valid_counts)
        np.testing.assert_array_equal(direct.sizes, snap.sizes)
        assert direct.n_categories == snap.n_categories

    def test_assignment_model_rejects_bad_theta(self):
        state = EngineState.zeros([3, 3], 2)
        with pytest.raises(ValueError):
            AssignmentModel(state, feature_weights=np.ones(5))

    def test_set_params_validates(self):
        model = MCDC(n_clusters=3)
        model.set_params(n_clusters=4, learning_rate=0.05)
        assert model.n_clusters == 4 and model.learning_rate == 0.05
        with pytest.raises(ValueError, match="Invalid parameter"):
            model.set_params(bogus=1)
        with pytest.raises(ValueError):
            MGCPL().set_params(learning_rate=2.0)  # revalidated through __init__
