"""Tests for the experiment harness, reporting helpers and CSV I/O."""

import pytest

from repro.data.io import load_csv, save_csv
from repro.data.uci import load_vote
from repro.experiments.config import ExperimentConfig, FAST_CONFIG, PAPER_CONFIG, active_config
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import linear_fit_r2
from repro.experiments.reporting import format_mean_std, format_table, highlight_best
from repro.experiments.runner import make_paper_method, method_names, run_method_on_dataset
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.metrics import INDEX_NAMES


class TestConfig:
    def test_presets_differ(self):
        assert PAPER_CONFIG.n_restarts > FAST_CONFIG.n_restarts

    def test_active_config_defaults_to_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_PRESET", raising=False)
        assert active_config() is FAST_CONFIG

    def test_active_config_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENT_PRESET", "paper")
        assert active_config() is PAPER_CONFIG


class TestRunner:
    def test_method_names_match_paper_columns(self):
        names = method_names()
        assert len(names) == 9
        assert names[0] == "K-MODES" and names[-1] == "MCDC+F."

    def test_make_paper_method_all_names(self):
        for name in method_names():
            model = make_paper_method(name, n_clusters=2, seed=0)
            assert hasattr(model, "fit_predict")

    def test_make_paper_method_unknown(self):
        with pytest.raises(ValueError):
            make_paper_method("DBSCAN", 2, 0)

    def test_run_method_on_dataset_aggregates(self):
        dataset = load_vote()
        stats = run_method_on_dataset("K-MODES", dataset, n_restarts=2, random_state=0)
        assert set(stats) == set(INDEX_NAMES)
        for index_stats in stats.values():
            assert 0.0 <= index_stats["mean"] <= 1.0
            assert index_stats["std"] >= 0.0


class TestTable2:
    def test_rows_and_verification(self):
        rows = run_table2()
        assert len(rows) == 8
        assert all(row["n_measured"] == row["n_paper"] for row in rows)

    def test_synthetic_rows_optional(self):
        rows = run_table2(include_synthetic=False, verify=False)
        assert "n_measured" not in rows[0]


class TestTable4:
    def test_symbols_from_synthetic_scores(self):
        # Hand-made Table III results where MCDC+F. dominates everything.
        datasets = ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8"]
        methods = method_names()
        table3 = {
            ds: {
                m: {
                    idx: {"mean": 0.9 if m == "MCDC+F." else 0.4, "std": 0.0}
                    for idx in INDEX_NAMES
                }
                for m in methods
            }
            for ds in datasets
        }
        results = run_table4(table3_results=table3, config=FAST_CONFIG)
        for counterpart, by_index in results.items():
            for index in INDEX_NAMES:
                assert by_index[index]["symbol"] == "+"


class TestFig5AndFig6Helpers:
    def test_fig5_on_single_easy_dataset(self):
        config = ExperimentConfig(n_restarts=1, datasets=("Vot",))
        results = run_fig5(config=config)
        info = results["Vot"]
        assert info["kappa"][0] <= info["k0"]
        assert info["final_k"] >= 2

    def test_linear_fit_r2_perfect_line(self):
        assert linear_fit_r2([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_linear_fit_r2_constant(self):
        assert linear_fit_r2([1, 2, 3], [5, 5, 5]) == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_mean_std(self):
        assert format_mean_std(0.1234, 0.05) == "0.123±0.05"

    def test_highlight_best_marks(self):
        marks = highlight_best({"a": 0.9, "b": 0.5, "c": 0.7})
        assert marks["a"] == "*"
        assert marks["c"] == "_"
        assert marks["b"] == ""


class TestCsvIO:
    def test_roundtrip(self, tmp_path, tiny_clusters):
        path = tmp_path / "tiny.csv"
        save_csv(tiny_clusters, path)
        loaded = load_csv(path, label_column=-1, has_header=True)
        assert loaded.n_objects == tiny_clusters.n_objects
        assert loaded.n_features == tiny_clusters.n_features
        assert loaded.n_clusters_true == tiny_clusters.n_clusters_true

    def test_missing_values_parsed(self, tmp_path):
        path = tmp_path / "missing.csv"
        path.write_text("a,b,class\nx,?,0\ny,z,1\n")
        ds = load_csv(path, has_header=True)
        assert ds.has_missing
        assert ds.n_objects == 2

    def test_no_labels(self, tmp_path):
        path = tmp_path / "nolabel.csv"
        path.write_text("x,y\nx,z\n")
        ds = load_csv(path, label_column=None)
        assert ds.labels is None

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\nc\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n")
        with pytest.raises(ValueError):
            load_csv(path)
