"""Tests for the synthetic generators and the UCI data set regenerations."""

import numpy as np
import pytest

from repro.data.generators import (
    make_categorical_clusters,
    make_nested_clusters,
    make_syn_d,
    make_syn_n,
)
from repro.data.uci import (
    TABLE2_SPECS,
    available_datasets,
    load_balance_scale,
    load_car_evaluation,
    load_dataset,
    load_nursery,
    load_tictactoe,
)
from repro.data.uci.registry import get_spec
from repro.metrics import adjusted_rand_index


class TestClusterGenerator:
    def test_shapes(self):
        ds = make_categorical_clusters(100, 5, 3, random_state=0)
        assert ds.n_objects == 100
        assert ds.n_features == 5
        assert ds.n_clusters_true == 3

    def test_reproducible(self):
        a = make_categorical_clusters(50, 4, 2, random_state=3)
        b = make_categorical_clusters(50, 4, 2, random_state=3)
        assert np.array_equal(a.codes, b.codes)

    def test_purity_controls_separability(self):
        pure = make_categorical_clusters(300, 6, 3, purity=0.95, random_state=0)
        noisy = make_categorical_clusters(300, 6, 3, purity=0.4, random_state=0)

        def class_signal(ds):
            # Fraction of objects whose first-feature value equals their cluster mode.
            signal = 0
            for label in range(3):
                col = ds.codes[ds.labels == label, 0]
                signal += np.bincount(col).max()
            return signal / ds.n_objects

        assert class_signal(pure) > class_signal(noisy)

    def test_cluster_weights_respected(self):
        ds = make_categorical_clusters(
            1000, 4, 2, cluster_weights=[0.9, 0.1], random_state=0
        )
        counts = np.bincount(ds.labels)
        assert counts[0] > counts[1] * 3

    def test_invalid_vocabulary_rejected(self):
        with pytest.raises(ValueError):
            make_categorical_clusters(10, 2, 2, n_categories=1)

    def test_per_feature_vocabulary(self):
        ds = make_categorical_clusters(50, 3, 2, n_categories=[2, 3, 4], random_state=0)
        assert ds.n_categories == [2, 3, 4]


class TestNestedGenerator:
    def test_nested_structure_present(self):
        ds = make_nested_clusters(random_state=0)
        assert ds.n_clusters_true == 3
        fine = ds.fine_labels
        assert np.unique(fine).size == 9
        # Fine labels refine the coarse labels exactly.
        assert np.array_equal(fine // 3, ds.labels)

    def test_fine_structure_informative(self):
        ds = make_nested_clusters(random_state=0)
        # Objects in the same fine cluster agree on more features than random pairs.
        same_fine = adjusted_rand_index(ds.fine_labels, ds.fine_labels)
        assert same_fine == 1.0


class TestSyntheticScalabilitySets:
    def test_syn_n_statistics(self):
        ds = make_syn_n(n_objects=5000, random_state=0)
        assert ds.n_features == 10
        assert ds.n_clusters_true == 3

    def test_syn_d_statistics(self):
        ds = make_syn_d(n_features=50, n_objects=500, random_state=0)
        assert ds.n_features == 50
        assert ds.n_clusters_true == 3


class TestExactUciRegenerations:
    def test_tictactoe_exact_counts(self):
        ds = load_tictactoe()
        assert ds.n_objects == 958
        assert ds.n_features == 9
        counts = np.bincount(ds.labels)
        assert sorted(counts.tolist()) == [332, 626]

    def test_balance_exact_counts(self):
        ds = load_balance_scale()
        assert ds.n_objects == 625
        counts = sorted(np.bincount(ds.labels).tolist())
        assert counts == [49, 288, 288]

    def test_car_size_and_classes(self):
        ds = load_car_evaluation()
        assert ds.n_objects == 1728
        assert ds.n_features == 6
        assert ds.n_clusters_true == 4
        # Majority class (unacc) dominates as in the original distribution.
        assert np.bincount(ds.labels).max() / ds.n_objects > 0.6

    def test_nursery_size_and_hard_rule(self):
        ds = load_nursery()
        assert ds.n_objects == 12960
        assert ds.n_clusters_true == 5
        # health = not_recom (one third of combinations) always maps to one class.
        health_col = ds.feature_names.index("health")
        not_recom_code = ds.categories[health_col].index("not_recom")
        mask = ds.codes[:, health_col] == not_recom_code
        assert np.unique(ds.labels[mask]).size == 1
        assert mask.sum() == 4320


class TestRegistry:
    @pytest.mark.parametrize("spec", TABLE2_SPECS[:8], ids=lambda s: s.abbrev)
    def test_all_datasets_match_table2(self, spec):
        ds = spec.loader()
        assert ds.n_objects == spec.n
        assert ds.n_features == spec.d
        assert ds.n_clusters_true == spec.k_star

    def test_available_datasets(self):
        assert available_datasets() == ["Car", "Con", "Che", "Mus", "Tic", "Vot", "Bal", "Nur"]
        assert len(available_datasets(include_synthetic=True)) == 10

    def test_lookup_by_alias(self):
        assert get_spec("mushroom").abbrev == "Mus"
        assert get_spec("Tic Tac Toe").abbrev == "Tic"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")

    def test_loaders_are_deterministic(self):
        a = load_dataset("Con")
        b = load_dataset("Con")
        assert np.array_equal(a.codes, b.codes)
