"""Cross-module integration tests and property-based invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FKMAWCW, GUDMM, KModes
from repro.core import MCDC, MCDCEncoder, MGCPL
from repro.data.generators import make_categorical_clusters, make_nested_clusters
from repro.data.uci import load_vote
from repro.metrics import adjusted_rand_index, clustering_accuracy, evaluate_clustering


class TestPipelineIntegration:
    def test_mcdc_beats_or_matches_kmodes_on_nested_data(self, nested_dataset):
        mcdc = MCDC(n_clusters=3, random_state=0).fit_predict(nested_dataset)
        kmodes = KModes(3, n_init=5, random_state=0).fit_predict(nested_dataset)
        ari_mcdc = adjusted_rand_index(nested_dataset.labels, mcdc)
        ari_kmodes = adjusted_rand_index(nested_dataset.labels, kmodes)
        assert ari_mcdc >= ari_kmodes - 0.2

    def test_encoding_enhances_existing_clusterer(self):
        dataset = load_vote()
        encoder = MCDCEncoder(random_state=0).fit(dataset)
        encoded = encoder.transform_dataset()
        enhanced = GUDMM(2, n_init=2, random_state=0).fit_predict(encoded)
        assert clustering_accuracy(dataset.labels, enhanced) > 0.8

    def test_mcdc_plus_f_variant_runs_end_to_end(self):
        dataset = load_vote()
        model = MCDC(
            n_clusters=2,
            final_clusterer=FKMAWCW(2, n_init=2, random_state=0),
            random_state=0,
        ).fit(dataset)
        scores = evaluate_clustering(dataset.labels, model.labels_)
        assert scores["ACC"] > 0.7

    def test_vote_dataset_end_to_end_quality(self):
        dataset = load_vote()
        labels = MCDC(n_clusters=2, random_state=1).fit_predict(dataset)
        assert clustering_accuracy(dataset.labels, labels) > 0.85

    def test_mgcpl_granularities_refine_towards_truth(self, nested_dataset):
        result = MGCPL(random_state=1).fit(nested_dataset).result_
        coarse_ari = adjusted_rand_index(nested_dataset.labels, result.final_labels)
        first_ari = adjusted_rand_index(nested_dataset.labels, result.levels[0].labels)
        # The coarsest level matches the coarse ground truth at least as well
        # as the finest level does.
        assert coarse_ari >= first_ari - 0.05


class TestPropertyBased:
    @given(
        n_clusters=st.integers(2, 4),
        n_features=st.integers(3, 6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_mcdc_labels_are_valid_partition(self, n_clusters, n_features, seed):
        dataset = make_categorical_clusters(
            n_objects=90, n_features=n_features, n_clusters=n_clusters,
            purity=0.9, random_state=seed,
        )
        labels = MCDC(n_clusters=n_clusters, n_init=2, random_state=seed).fit_predict(dataset)
        assert labels.shape == (90,)
        assert labels.min() >= 0
        assert np.unique(labels).size <= n_clusters

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_mgcpl_kappa_monotone_property(self, seed):
        dataset = make_categorical_clusters(
            n_objects=120, n_features=5, n_clusters=3, purity=0.85, random_state=seed
        )
        kappa = MGCPL(random_state=seed).fit(dataset).kappa_
        assert all(kappa[i] >= kappa[i + 1] for i in range(len(kappa) - 1))
        assert kappa[-1] >= 1

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_kmodes_cost_never_increases_with_truth_init(self, seed):
        dataset = make_categorical_clusters(
            n_objects=80, n_features=4, n_clusters=2, purity=0.9, random_state=seed
        )
        model = KModes(2, n_init=4, random_state=seed).fit(dataset)
        assert model.cost_ >= 0.0
        assert model.labels_.shape[0] == 80

    @given(seed=st.integers(0, 10_000), purity=st.floats(0.6, 0.95))
    @settings(max_examples=8, deadline=None)
    def test_higher_purity_never_hurts_mcdc_much(self, seed, purity):
        noisy = make_categorical_clusters(
            n_objects=100, n_features=5, n_clusters=2, purity=purity, random_state=seed
        )
        labels = MCDC(n_clusters=2, n_init=2, random_state=seed).fit_predict(noisy)
        scores = evaluate_clustering(noisy.labels, labels)
        assert scores["ACC"] >= 0.5  # never worse than chance on two balanced clusters


class TestRobustness:
    def test_mcdc_handles_missing_values(self):
        dataset = make_categorical_clusters(150, 5, 2, purity=0.9, random_state=3)
        codes = dataset.codes.copy()
        rng = np.random.default_rng(0)
        mask = rng.random(codes.shape) < 0.05
        codes[mask] = -1
        labels = MCDC(n_clusters=2, random_state=0).fit_predict(codes)
        assert labels.shape[0] == 150

    def test_mcdc_handles_constant_feature(self):
        dataset = make_categorical_clusters(100, 4, 2, purity=0.9, random_state=4)
        codes = np.hstack([dataset.codes, np.zeros((100, 1), dtype=np.int64)])
        labels = MCDC(n_clusters=2, random_state=0).fit_predict(codes)
        assert np.unique(labels).size <= 2

    def test_mcdc_with_duplicate_objects(self):
        base = make_categorical_clusters(40, 4, 2, purity=0.95, random_state=5)
        codes = np.vstack([base.codes, base.codes])  # every object duplicated
        labels = MCDC(n_clusters=2, random_state=0).fit_predict(codes)
        assert labels.shape[0] == 80

    def test_mcdc_more_clusters_than_natural(self, tiny_clusters):
        labels = MCDC(n_clusters=5, random_state=0).fit_predict(tiny_clusters)
        assert np.unique(labels).size <= 5

    def test_nested_generator_with_uneven_features(self):
        dataset = make_nested_clusters(n_objects=200, n_features=5, random_state=0)
        assert dataset.n_features == 5
        labels = MCDC(n_clusters=3, random_state=0).fit_predict(dataset)
        assert labels.shape[0] == 200
