"""Tests for the validity indices and the statistical tests."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    INDEX_NAMES,
    adjusted_mutual_information,
    adjusted_rand_index,
    clustering_accuracy,
    contingency_matrix,
    entropy_of_labels,
    evaluate_clustering,
    fowlkes_mallows,
    mutual_information,
    normalized_mutual_information,
    purity,
    rand_index,
    relabel_to_match,
)
from repro.stats import friedman_ranks, wilcoxon_signed_rank, win_tie_loss

TRUE = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
PERFECT = np.array([2, 2, 2, 0, 0, 0, 1, 1, 1])   # permuted but identical partition
HALF = np.array([0, 0, 1, 1, 1, 1, 2, 2, 0])


class TestContingency:
    def test_matrix_sums_to_n(self):
        table = contingency_matrix(TRUE, HALF)
        assert table.sum() == TRUE.size

    def test_relabel_to_match_recovers_permutation(self):
        relabelled = relabel_to_match(TRUE, PERFECT)
        assert np.array_equal(relabelled, TRUE)

    def test_relabel_extra_clusters_get_fresh_ids(self):
        pred = np.array([0, 0, 0, 1, 1, 1, 2, 2, 3])
        relabelled = relabel_to_match(TRUE, pred)
        assert np.unique(relabelled).size == 4


class TestAccuracy:
    def test_perfect(self):
        assert clustering_accuracy(TRUE, PERFECT) == 1.0

    def test_partial(self):
        acc = clustering_accuracy(TRUE, HALF)
        assert 0.5 < acc < 1.0

    def test_single_cluster_prediction(self):
        assert clustering_accuracy(TRUE, np.zeros_like(TRUE)) == pytest.approx(1 / 3)

    def test_purity_at_least_accuracy(self):
        assert purity(TRUE, HALF) >= clustering_accuracy(TRUE, HALF) - 1e-12


class TestPairCounting:
    def test_ari_perfect(self):
        assert adjusted_rand_index(TRUE, PERFECT) == pytest.approx(1.0)

    def test_ari_single_cluster_is_zero(self):
        assert adjusted_rand_index(TRUE, np.zeros_like(TRUE)) == pytest.approx(0.0)

    def test_ari_random_near_zero(self):
        rng = np.random.default_rng(0)
        values = [
            adjusted_rand_index(rng.integers(0, 3, 300), rng.integers(0, 3, 300))
            for _ in range(5)
        ]
        assert abs(np.mean(values)) < 0.05

    def test_rand_index_bounds(self):
        assert 0.0 <= rand_index(TRUE, HALF) <= 1.0

    def test_fm_perfect(self):
        assert fowlkes_mallows(TRUE, PERFECT) == pytest.approx(1.0)

    def test_fm_zero_when_no_agreeing_pairs(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        assert fowlkes_mallows(truth, pred) == 0.0


class TestInformation:
    def test_entropy_uniform(self):
        assert entropy_of_labels([0, 1, 2, 3]) == pytest.approx(np.log(4))

    def test_mi_identical_equals_entropy(self):
        assert mutual_information(TRUE, TRUE) == pytest.approx(entropy_of_labels(TRUE))

    def test_nmi_bounds(self):
        assert 0.0 <= normalized_mutual_information(TRUE, HALF) <= 1.0

    def test_ami_perfect(self):
        assert adjusted_mutual_information(TRUE, PERFECT) == pytest.approx(1.0)

    def test_ami_single_cluster(self):
        value = adjusted_mutual_information(TRUE, np.zeros_like(TRUE))
        assert abs(value) < 1e-9

    def test_ami_random_near_zero(self):
        rng = np.random.default_rng(1)
        values = [
            adjusted_mutual_information(rng.integers(0, 3, 200), rng.integers(0, 3, 200))
            for _ in range(5)
        ]
        assert abs(np.mean(values)) < 0.05

    def test_unknown_average_rejected(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(TRUE, HALF, average="nope")


class TestEvaluateClustering:
    def test_keys(self):
        scores = evaluate_clustering(TRUE, HALF)
        assert set(scores) == set(INDEX_NAMES)

    def test_perfect_all_ones(self):
        scores = evaluate_clustering(TRUE, PERFECT)
        for value in scores.values():
            assert value == pytest.approx(1.0)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_indices_bounded_property(self, seed):
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 4, 60)
        pred = rng.integers(0, 5, 60)
        scores = evaluate_clustering(truth, pred)
        assert 0.0 <= scores["ACC"] <= 1.0
        assert -1.0 <= scores["ARI"] <= 1.0
        assert scores["AMI"] <= 1.0 + 1e-9
        assert 0.0 <= scores["FM"] <= 1.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_permutation_invariance_property(self, seed):
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 3, 50)
        pred = rng.integers(0, 3, 50)
        permutation = rng.permutation(3)
        permuted_pred = permutation[pred]
        a = evaluate_clustering(truth, pred)
        b = evaluate_clustering(truth, permuted_pred)
        for index in INDEX_NAMES:
            assert a[index] == pytest.approx(b[index], abs=1e-9)


class TestWilcoxon:
    def test_matches_scipy_exact(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.6, 0.1, 10)
        y = x - rng.normal(0.05, 0.02, 10)
        ours = wilcoxon_signed_rank(x, y)
        theirs = scipy.stats.wilcoxon(x, y)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_matches_scipy_normal_approximation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0.5, 0.1, 40)
        y = x - rng.normal(0.03, 0.05, 40)
        ours = wilcoxon_signed_rank(x, y)
        theirs = scipy.stats.wilcoxon(x, y, correction=True, mode="approx")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.05)

    def test_identical_samples_not_significant(self):
        x = [0.5, 0.6, 0.7]
        result = wilcoxon_signed_rank(x, x)
        assert result.p_value == 1.0
        assert result.symbol() == "-"

    def test_clear_difference_is_significant(self):
        x = [0.9, 0.85, 0.92, 0.88, 0.91, 0.87, 0.9, 0.86]
        y = [0.5, 0.45, 0.52, 0.48, 0.51, 0.47, 0.5, 0.46]
        result = wilcoxon_signed_rank(x, y, alpha=0.1)
        assert result.significant
        assert result.symbol() == "+"

    def test_one_sided_alternatives(self):
        x = [0.9, 0.8, 0.85, 0.95, 0.9, 0.88]
        y = [0.5, 0.4, 0.45, 0.55, 0.5, 0.48]
        greater = wilcoxon_signed_rank(x, y, alternative="greater")
        less = wilcoxon_signed_rank(x, y, alternative="less")
        assert greater.p_value < 0.05
        assert less.p_value > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1, 2], alternative="bigger")
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1, 2], alpha=1.5)


class TestRanking:
    def test_win_tie_loss(self):
        wins, ties, losses = win_tie_loss([0.9, 0.5, 0.7], [0.8, 0.5, 0.9])
        assert (wins, ties, losses) == (1, 1, 1)

    def test_friedman_ranks_order(self):
        ranks = friedman_ranks({"good": [0.9, 0.8], "bad": [0.1, 0.2], "mid": [0.5, 0.5]})
        assert ranks["good"] < ranks["mid"] < ranks["bad"]

    def test_friedman_ranks_ties_averaged(self):
        ranks = friedman_ranks({"a": [0.5], "b": [0.5]})
        assert ranks["a"] == ranks["b"] == 1.5
