"""The clusterer registry: completeness, aliases, construction, deprecation."""

from __future__ import annotations

import pytest

import repro.baselines as baselines_pkg
import repro.core as core_pkg
from repro.core import MCDC, BaseClusterer
from repro.core.base import ArrayOrDataset
from repro.distributed.runtime import ShardedCAME, ShardedMCDC, ShardedMGCPL
from repro.experiments.runner import (
    METHOD_NAMES,
    PAPER_METHOD_PARAMS,
    make_method,
    make_paper_method,
)
from repro.registry import (
    available_clusterers,
    get_clusterer_spec,
    make_clusterer,
    register_clusterer,
    registered_specs,
    resolve_name,
    spec_for_instance,
)


def _all_subclasses(cls):
    out = set()
    for sub in cls.__subclasses__():
        out.add(sub)
        out |= _all_subclasses(sub)
    return out


class TestCompleteness:
    def test_every_core_and_baseline_clusterer_is_registered(self):
        registered = {spec.cls for spec in registered_specs() if spec.cls is not None}
        prefixes = (core_pkg.__name__ + ".", baselines_pkg.__name__ + ".")
        missing = [
            sub
            for sub in _all_subclasses(BaseClusterer)
            if sub.__module__.startswith(prefixes) and sub not in registered
        ]
        assert not missing, f"unregistered clusterers: {[c.__name__ for c in missing]}"

    @pytest.mark.parametrize(
        "spec", registered_specs(), ids=[s.name for s in registered_specs()]
    )
    def test_every_name_constructs_and_roundtrips_params(self, spec):
        model = make_clusterer(spec.name, **spec.example_params)
        assert isinstance(model, BaseClusterer)

        params = model.get_params()
        # every example param must be visible through get_params
        for key in spec.example_params:
            assert key in params
        # set_params with its own params is a no-op round trip
        model.set_params(**params)
        assert model.get_params() == params
        # and a clone rebuilds from those params alone
        assert type(model.clone()) is type(model)

    def test_paper_method_names_resolve(self):
        for name in METHOD_NAMES:
            assert resolve_name(name) in PAPER_METHOD_PARAMS


class TestResolution:
    def test_aliases_and_case_insensitivity(self):
        assert resolve_name("K-MODES") == "kmodes"
        assert resolve_name("MCDC+G.") == "mcdc+gudmm"
        assert resolve_name("MCDC+F.") == "mcdc+fkmawcw"
        assert resolve_name("mcdc @ Sharded") == "mcdc@sharded"
        assert resolve_name("MCDC") == "mcdc"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            resolve_name("dbscan")
        with pytest.raises(ValueError):
            make_clusterer("dbscan", n_clusters=2)

    def test_sharded_names_build_sharded_classes(self):
        assert isinstance(
            make_clusterer("mcdc@sharded", n_clusters=2, backend="serial"), ShardedMCDC
        )
        assert isinstance(
            make_clusterer("mgcpl@sharded", backend="serial"), ShardedMGCPL
        )
        assert isinstance(
            make_clusterer("sharded-came", n_clusters=2, backend="serial"), ShardedCAME
        )

    def test_spec_metadata(self):
        spec = get_clusterer_spec("mcdc")
        assert spec.cls is MCDC
        assert spec.description
        assert "mcdc" in available_clusterers()

    def test_spec_for_instance(self):
        assert spec_for_instance(MCDC(n_clusters=2)).name == "mcdc"
        composite = make_clusterer("mcdc+gudmm", n_clusters=2, random_state=0)
        assert spec_for_instance(composite).name == "mcdc"  # resolves to the class

        class Unregistered(BaseClusterer):
            def _fit(self, X: ArrayOrDataset):
                return self

        with pytest.raises(ValueError, match="not a registered"):
            spec_for_instance(Unregistered())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_clusterer("mcdc")
            class Impostor(BaseClusterer):  # noqa: F811
                def _fit(self, X: ArrayOrDataset):
                    return self


class TestPaperFactory:
    def test_make_paper_method_builds_paper_configurations(self):
        model = make_paper_method("MCDC+G.", n_clusters=3, seed=0)
        assert isinstance(model, MCDC)
        assert model.final_clusterer is not None
        assert type(model.final_clusterer).__name__ == "GUDMM"
        assert model.final_clusterer.n_init == 3

        kmodes = make_paper_method("K-MODES", n_clusters=3, seed=0)
        assert kmodes.n_init == 5

    def test_make_paper_method_rejects_non_paper_methods(self):
        # registered, but not one of the paper's nine compared methods
        with pytest.raises(ValueError, match="compared methods"):
            make_paper_method("competitive", n_clusters=3, seed=0)

    def test_make_method_is_a_deprecated_shim(self):
        with pytest.deprecated_call():
            model = make_method("MCDC+F.", 3, 0)
        assert isinstance(model, MCDC)
        assert type(model.final_clusterer).__name__ == "FKMAWCW"

    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_old_names_still_resolve_through_the_shim(self, name):
        with pytest.deprecated_call():
            model = make_method(name, 2, 0)
        assert isinstance(model, BaseClusterer)
