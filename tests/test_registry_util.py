"""The generic name/alias/lazy-populate registry helper.

The machinery shared by the clusterer registry (:mod:`repro.registry`) and
the executor-backend registry (:mod:`repro.distributed.transport`) lives in
:class:`repro.utils.registry.NamedRegistry`; this file tests the helper
itself — normalisation, alias resolution, double-registration conflicts, and
the population rollback that keeps a failed import loud on every lookup —
and that both production registries actually run on it.
"""

from __future__ import annotations

import pytest

from repro.utils.registry import NamedRegistry


def make_registry(**kwargs) -> NamedRegistry:
    return NamedRegistry("widget", **kwargs)


class TestNormalisationAndAliases:
    def test_names_are_case_and_space_insensitive(self):
        registry = make_registry()
        registry.register("My Widget", spec={"id": 1})
        assert registry.resolve("my widget") == "mywidget"
        assert registry.resolve("MYWIDGET") == "mywidget"
        assert registry.resolve(" My  Widget ") == "mywidget"

    def test_aliases_resolve_to_canonical_name(self):
        registry = make_registry()
        registry.register("kmodes", spec="spec", aliases=("K-MODES", "k modes"))
        assert registry.resolve("k-modes") == "kmodes"
        assert registry.resolve("K Modes") == "kmodes"
        assert registry.get("K-MODES") == "spec"
        # aliases are resolvable but not listed as canonical names
        assert registry.names() == ["kmodes"]
        assert "k-modes" in registry
        assert len(registry) == 1

    def test_unknown_name_lists_available(self):
        registry = make_registry()
        registry.register("alpha", spec=1)
        registry.register("beta", spec=2)
        with pytest.raises(ValueError, match="Unknown widget 'gamma'.*alpha, beta"):
            registry.resolve("gamma")

    def test_specs_sorted_by_canonical_name(self):
        registry = make_registry()
        registry.register("zeta", spec="z")
        registry.register("alpha", spec="a")
        assert registry.specs() == ["a", "z"]
        assert registry.names() == ["alpha", "zeta"]


class TestDoubleRegistration:
    def test_same_factory_is_idempotent(self):
        registry = make_registry()

        def factory():
            return None

        registry.register("thing", spec="v1", factory=factory)
        # module reload / decorator re-entry: same factory, no error
        registry.register("thing", spec="v2", factory=factory)
        assert registry.get("thing") == "v2"

    def test_different_factory_for_same_name_rejected(self):
        registry = make_registry()
        registry.register("thing", spec="a", factory=object())
        with pytest.raises(ValueError, match="widget name 'thing' is already registered"):
            registry.register("thing", spec="b", factory=object())

    def test_alias_claimed_by_another_name_rejected(self):
        registry = make_registry()
        registry.register("first", spec=1, aliases=("shared",))
        with pytest.raises(ValueError, match="alias 'shared' already points at 'first'"):
            registry.register("second", spec=2, aliases=("shared",))

    def test_alias_reclaimed_by_same_name_is_fine(self):
        registry = make_registry()

        def factory():
            return None

        registry.register("first", spec=1, factory=factory, aliases=("nick",))
        registry.register("first", spec=1, factory=factory, aliases=("nick",))
        assert registry.resolve("nick") == "first"


class TestLazyPopulation:
    def test_populate_runs_once_on_first_lookup(self):
        calls = []

        def populate():
            calls.append(1)
            registry.register("late", spec="populated")

        registry = make_registry(populate=populate)
        assert not calls  # construction does not populate
        assert registry.resolve("late") == "late"
        assert registry.names() == ["late"]
        assert calls == [1]  # subsequent lookups reuse the populated state

    def test_population_rolls_back_on_import_failure(self):
        attempts = []

        def populate():
            attempts.append(1)
            registry.register("partial", spec="half-done")
            if len(attempts) < 3:
                raise ImportError("missing optional dependency")
            registry.register("complete", spec="done")

        registry = make_registry(populate=populate)
        # The failure must surface (not an empty "Unknown widget" error) and
        # must surface again on the next lookup — no half-populated registry.
        with pytest.raises(ImportError, match="missing optional"):
            registry.resolve("complete")
        with pytest.raises(ImportError, match="missing optional"):
            registry.names()
        assert registry.resolve("complete") == "complete"  # third attempt succeeds
        assert attempts == [1, 1, 1]

    def test_registry_without_populate_is_ready_immediately(self):
        registry = make_registry()
        assert registry.names() == []


class TestProductionRegistriesUseTheHelper:
    def test_clusterer_registry_is_a_named_registry(self):
        import repro.registry as clusterers

        assert isinstance(clusterers._REGISTRY, NamedRegistry)
        assert clusterers._REGISTRY.kind == "clusterer"
        assert clusterers.resolve_name("K-MODES") == "kmodes"

    def test_backend_registry_is_a_named_registry(self):
        from repro.distributed import transport

        assert isinstance(transport._BACKENDS, NamedRegistry)
        assert transport._BACKENDS.kind == "executor backend"
        assert transport.resolve_backend("in-process") == "serial"

    def test_error_messages_name_each_domain(self):
        import repro.registry as clusterers
        from repro.distributed import transport

        with pytest.raises(ValueError, match="Unknown clusterer"):
            clusterers.resolve_name("no-such-method")
        with pytest.raises(ValueError, match="Unknown executor backend"):
            transport.resolve_backend("no-such-backend")
