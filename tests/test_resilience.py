"""The fault-tolerant elastic shard runtime (ISSUE 8).

The contract under test: a worker that is ``kill -9``-ed mid-fit does not
abort the fit — the shard is re-placed deterministically onto a surviving
host, its state replayed from the tracked labels, and the fit completes
**bit-identical** to the serial reference for batch MGCPL; the
content-addressed shard cache makes re-fits of the same data ship zero
payload bytes (asserted via the transport counters); heartbeats mark hosts
dead after consecutive missed probes and reinstate them on the first
success; placement from :meth:`GranularityAwareScheduler.place_shards` is
deterministic for a fixed seed, including after a host loss; and the S1
codec knobs (frame cap, connect/receive timeouts) honour their environment
variables with validation.

Real process death is exercised through ``repro worker`` subprocesses
(SIGKILL, no cleanup); the cheaper protocol paths run over in-process
worker threads (``local_worker_pool``).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.mgcpl import MGCPL
from repro.core.sync import InProcessShardExecutor
from repro.data.generators import make_categorical_clusters
from repro.distributed import (
    GranularityAwareScheduler,
    HeartbeatMonitor,
    RemoteWorkerError,
    ResilientTCPExecutor,
    RetryPolicy,
    ShardCache,
    ShardedMGCPL,
    TransportError,
    make_executor,
    measured_node_pool,
    shard_content_key,
)
from repro.distributed import codec, rpc

pytestmark = pytest.mark.timeout(120)


# ---------------------------------------------------------------------- #
# Real worker processes (so SIGKILL is SIGKILL)
# ---------------------------------------------------------------------- #
def spawn_worker_process(shard_cache=None):
    """Launch ``repro worker`` in a subprocess; returns (process, address)."""
    cmd = [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"]
    if shard_cache is not None:
        cmd += ["--shard-cache", str(shard_cache)]
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True, env=env)
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    if not match:  # pragma: no cover - diagnostics for a broken spawn
        process.kill()
        raise RuntimeError(f"worker printed {line!r} instead of its address")
    return process, match.group(1)


@pytest.fixture()
def worker_fleet():
    """Three killable ``repro worker`` subprocesses; yields (procs, addresses)."""
    procs, addresses = [], []
    try:
        for _ in range(3):
            process, address = spawn_worker_process()
            procs.append(process)
            addresses.append(address)
        yield procs, addresses
    finally:
        for process in procs:
            if process.poll() is None:
                process.kill()
        for process in procs:
            process.wait(timeout=10)


@pytest.fixture(scope="module")
def fit_dataset():
    return make_categorical_clusters(
        n_objects=900, n_features=8, n_clusters=3, random_state=7,
        name="resilience-fit",
    )


# ---------------------------------------------------------------------- #
# S1: configurable frame cap and timeouts
# ---------------------------------------------------------------------- #
class TestCodecConfiguration:
    def test_frame_cap_defaults_to_module_constant(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_FRAME", raising=False)
        assert codec.frame_cap() == codec.MAX_FRAME

    def test_frame_cap_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_FRAME", "4096")
        assert codec.frame_cap() == 4096

    @pytest.mark.parametrize("bad", ["zero", "-5", "0", "1.5"])
    def test_frame_cap_rejects_malformed_env(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_MAX_FRAME", bad)
        with pytest.raises(ValueError, match="REPRO_MAX_FRAME"):
            codec.frame_cap()

    def test_env_frame_cap_enforced_on_send(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_FRAME", "64")

        class _Sink:
            def sendall(self, data):  # pragma: no cover - must not be reached
                raise AssertionError("oversized frame was sent")

        with pytest.raises(TransportError, match="exceeds the 64"):
            codec.send_frame(_Sink(), b"x" * 65)

    def test_explicit_max_frame_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_FRAME", "1000000")

        class _Sink:
            def sendall(self, data):  # pragma: no cover
                raise AssertionError("oversized frame was sent")

        with pytest.raises(TransportError, match="exceeds the 32"):
            codec.send_frame(_Sink(), b"x" * 33, max_frame=32)

    def test_connect_timeout_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONNECT_TIMEOUT", raising=False)
        assert codec.default_connect_timeout() == 10.0
        monkeypatch.setenv("REPRO_CONNECT_TIMEOUT", "2.5")
        assert codec.default_connect_timeout() == 2.5
        monkeypatch.setenv("REPRO_CONNECT_TIMEOUT", "-1")
        with pytest.raises(ValueError, match="REPRO_CONNECT_TIMEOUT"):
            codec.default_connect_timeout()

    def test_io_timeout_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_IO_TIMEOUT", raising=False)
        assert codec.default_io_timeout() is None
        monkeypatch.setenv("REPRO_IO_TIMEOUT", "7.5")
        assert codec.default_io_timeout() == 7.5
        monkeypatch.setenv("REPRO_IO_TIMEOUT", "nope")
        with pytest.raises(ValueError, match="REPRO_IO_TIMEOUT"):
            codec.default_io_timeout()


# ---------------------------------------------------------------------- #
# The content-addressed shard cache
# ---------------------------------------------------------------------- #
class TestShardCache:
    def test_content_key_is_stable_and_content_sensitive(self, toy_codes):
        key = shard_content_key(toy_codes, [3, 3, 3])
        assert key == shard_content_key(toy_codes.copy(), [3, 3, 3])
        assert key != shard_content_key(toy_codes, [4, 3, 3])  # vocab differs
        changed = toy_codes.copy()
        changed[0, 0] += 1
        assert key != shard_content_key(changed, [3, 3, 3])

    def test_put_get_roundtrip(self, tmp_path, toy_codes):
        cache = ShardCache(tmp_path)
        key = shard_content_key(toy_codes, [3, 3, 3])
        cache.put(key, toy_codes, [3, 3, 3])
        assert cache.has(key)
        codes, ncat = cache.get(key)
        np.testing.assert_array_equal(codes, toy_codes)
        assert ncat == [3, 3, 3]

    def test_corrupt_entry_is_a_miss(self, tmp_path, toy_codes):
        cache = ShardCache(tmp_path)
        key = shard_content_key(toy_codes, [3, 3, 3])
        path = cache.put(key, toy_codes, [3, 3, 3])
        path.write_bytes(b"not an npz archive")
        assert cache.get(key) is None

    def test_malformed_key_rejected(self, tmp_path):
        cache = ShardCache(tmp_path)
        with pytest.raises(ValueError, match="malformed"):
            cache.path_for("../../etc/passwd")


# ---------------------------------------------------------------------- #
# Retry policy and heartbeats
# ---------------------------------------------------------------------- #
class TestLiveness:
    def test_retry_delays_are_capped_and_jittered(self):
        import random

        policy = RetryPolicy(max_retries=6, base_delay=0.2, max_delay=2.0)
        delays = list(policy.delays(random.Random(0)))
        assert len(delays) == 6
        assert all(0 < delay <= 2.0 for delay in delays)

    def test_retry_policy_validates(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_heartbeat_marks_dead_and_reinstates(self):
        with rpc.local_worker_pool(1) as hosts:
            transitions = []
            monitor = HeartbeatMonitor(
                hosts + ["127.0.0.1:1"], interval=0.05, timeout=0.5,
                max_misses=2, on_change=lambda h, a: transitions.append((h, a)),
            ).start()
            try:
                deadline = time.monotonic() + 10.0
                while monitor.is_alive("127.0.0.1:1") and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert monitor.is_alive(hosts[0])
                assert not monitor.is_alive("127.0.0.1:1")
                assert ("127.0.0.1:1", False) in transitions
                snapshot = monitor.snapshot()
                assert snapshot[hosts[0]]["alive"]
                assert snapshot["127.0.0.1:1"]["consecutive_misses"] >= 2
            finally:
                monitor.stop()
            # reinstatement: feed a manual success observation in
            monitor.observe("127.0.0.1:1", True, latency=0.001)
            assert monitor.is_alive("127.0.0.1:1")
            assert ("127.0.0.1:1", True) in transitions

    def test_ping_host_fails_cleanly_on_dead_address(self):
        with pytest.raises(TransportError):
            rpc.ping_host("127.0.0.1:1", timeout=0.5)


# ---------------------------------------------------------------------- #
# Fault injection: SIGKILL mid-fit, fit completes bit-identical
# ---------------------------------------------------------------------- #
class TestRecovery:
    def test_sigkill_mid_protocol_recovers_bit_identical(
        self, worker_fleet, small_clusters
    ):
        procs, hosts = worker_fleet
        executor = make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=3, hosts=hosts, max_retries=2,
        )
        reference = InProcessShardExecutor(
            small_clusters.codes, small_clusters.n_categories,
            shard_indices=executor.shard_indices,
        )
        assert isinstance(executor, ResilientTCPExecutor)
        np.testing.assert_array_equal(
            executor.begin_epoch(3, None).sizes, reference.begin_epoch(3, None).sizes
        )
        modes = small_clusters.codes[[0, 80, 160]]
        theta = np.ones(small_clusters.codes.shape[1])
        for step in range(5):
            if step == 2:
                procs[0].kill()
                procs[0].wait(timeout=10)
            np.testing.assert_array_equal(
                executor.hamming_assign(modes, theta),
                reference.hamming_assign(modes, theta),
            )
        assert len(executor.recovery_events) == 1
        event = executor.recovery_events[0]
        assert event["from_host"] == hosts[0]
        assert event["to_host"] in hosts[1:]
        assert event["recovery_seconds"] > 0
        # the dead host left the candidate set for the executor's lifetime
        assert 0 not in executor.alive_host_indices()
        executor.close()
        reference.close()

    def test_sigkill_mid_fit_completes_identical_to_serial(
        self, worker_fleet, fit_dataset
    ):
        procs, hosts = worker_fleet
        serial = MGCPL(random_state=3, update_mode="batch").fit(fit_dataset)
        model = ShardedMGCPL(
            n_shards=3, backend="tcp", hosts=hosts, random_state=3,
            backend_options={"max_retries": 3},
        )
        killer = threading.Timer(
            0.3, lambda: (procs[1].kill(), procs[1].wait(timeout=10))
        )
        killer.start()
        try:
            model.fit(fit_dataset)
        finally:
            killer.cancel()
        assert procs[1].poll() is not None, "worker survived the whole fit"
        np.testing.assert_array_equal(model.labels_, serial.labels_)

    def test_no_surviving_host_embeds_original_error(self, worker_fleet, small_clusters):
        procs, hosts = worker_fleet
        executor = make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=2, hosts=[hosts[0]], max_retries=1,
        )
        executor.begin_epoch(2, None)
        procs[0].kill()
        procs[0].wait(timeout=10)
        with pytest.raises(TransportError, match="re-placement failed"):
            executor.hamming_assign(
                small_clusters.codes[[0, 1]], np.ones(small_clusters.codes.shape[1])
            )
        assert executor.recovery_events == []
        executor.close()

    def test_remote_worker_error_is_never_retried(self, small_clusters):
        with rpc.local_worker_pool(2) as hosts:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=hosts, max_retries=3,
            )
            # rebuild before any begin_epoch: a deterministic application
            # error from a healthy worker — recovery must NOT kick in.
            with pytest.raises(RemoteWorkerError, match="worker raised"):
                executor.rebuild(np.zeros(small_clusters.n_objects, dtype=np.int64))
            assert executor.recovery_events == []
            executor.close()

    def test_recovery_restores_from_worker_cache(self, tmp_path, small_clusters):
        """A re-placed shard handshakes from the cache: zero payload bytes."""
        with rpc.local_worker_pool(2, shard_cache=tmp_path) as survivors:
            process, doomed = spawn_worker_process()
            try:
                executor = make_executor(
                    "tcp", small_clusters.codes, small_clusters.n_categories,
                    shards=2, hosts=[doomed, survivors[0]],
                    shard_cache=tmp_path, max_retries=2,
                )
                executor.begin_epoch(3, None)
                shipped_before = executor.transport_stats()["payload_bytes_shipped"]
                process.kill()
                process.wait(timeout=10)
                executor.hamming_assign(
                    small_clusters.codes[[0, 1, 2]],
                    np.ones(small_clusters.codes.shape[1]),
                )
                assert len(executor.recovery_events) == 1
                assert executor.recovery_events[0]["cache_status"] == "hit"
                stats = executor.transport_stats()
                assert stats["payload_bytes_shipped"] == shipped_before
                executor.close()
            finally:
                if process.poll() is None:
                    process.kill()
                process.wait(timeout=10)


# ---------------------------------------------------------------------- #
# Warm shard cache: second fit ships zero payload bytes
# ---------------------------------------------------------------------- #
class TestShardCacheOnTheWire:
    def test_second_fit_ships_zero_bytes(self, tmp_path, small_clusters):
        coordinator_cache = tmp_path / "coordinator"
        worker_cache = tmp_path / "workers"
        with rpc.local_worker_pool(2, shard_cache=worker_cache) as hosts:
            first = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=hosts, shard_cache=coordinator_cache,
            )
            cold = first.transport_stats()
            assert cold["payload_bytes_shipped"] > 0
            assert cold["cache_misses"] == 2
            first.begin_epoch(3, None)
            first.close()

            second = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=hosts, shard_cache=coordinator_cache,
            )
            warm = second.transport_stats()
            assert warm["payload_bytes_shipped"] == 0
            assert warm["cache_hits"] == 2
            # and the warm executor still computes
            assert int(second.begin_epoch(3, None).sizes.sum()) == 0
            second.close()

    def test_shared_directory_never_ships(self, tmp_path, small_clusters):
        """Coordinator and workers sharing one cache dir: zero bytes from fit one."""
        with rpc.local_worker_pool(2, shard_cache=tmp_path) as hosts:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=hosts, shard_cache=tmp_path,
            )
            stats = executor.transport_stats()
            assert stats["payload_bytes_shipped"] == 0
            assert stats["cache_hits"] == 2
            executor.close()

    def test_without_cache_codes_ship_in_the_hello(self, small_clusters):
        with rpc.local_worker_pool(1) as hosts:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=1, hosts=hosts,
            )
            stats = executor.transport_stats()
            assert stats["payload_bytes_shipped"] == small_clusters.codes.nbytes
            executor.close()


# ---------------------------------------------------------------------- #
# S3: placement determinism (incl. after a simulated host loss)
# ---------------------------------------------------------------------- #
class TestPlacementDeterminism:
    SIZES = [400, 300, 300, 200, 150]

    def test_same_hosts_same_seed_identical_maps(self):
        pool = measured_node_pool({0: 120.0, 1: 80.0, 2: 200.0, 3: 95.0})
        first = GranularityAwareScheduler(
            n_groups=2, random_state=0
        ).place_shards(self.SIZES, pool)
        second = GranularityAwareScheduler(
            n_groups=2, random_state=0
        ).place_shards(self.SIZES, pool)
        assert first == second
        assert all(0 <= node < 4 for node in first)

    def test_determinism_survives_host_loss(self):
        surviving = {0: 120.0, 2: 200.0, 3: 95.0}  # host 1 lost
        pool = measured_node_pool(surviving)
        first = GranularityAwareScheduler(
            n_groups=2, random_state=0
        ).place_shards(self.SIZES, pool)
        second = GranularityAwareScheduler(
            n_groups=2, random_state=0
        ).place_shards(self.SIZES, pool)
        assert first == second
        # pool indices map back to host ids through sorted(surviving)
        hosts = sorted(surviving)
        assert {hosts[p] for p in first} <= {0, 2, 3}

    def test_replacement_host_choice_is_deterministic(self, small_clusters):
        """Least-resident-rows among the living, ties to the lowest index."""
        with rpc.local_worker_pool(3) as hosts:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=3, hosts=hosts, placement=[0, 1, 2],
            )
            try:
                # drop host 2's transport from the books: hosts 0 and 1 carry
                # one shard each (a tie) -> host 0 must win, repeatably
                assert executor._pick_host(exclude={2}) == 0
                assert executor._pick_host(exclude={2}) == 0
                assert executor._pick_host(exclude={0, 2}) == 1
                assert executor._pick_host(exclude={0, 1, 2}) is None
            finally:
                executor.close()

    def test_measured_pool_features_stay_in_vocabulary(self):
        from repro.distributed.node import NODE_FEATURES

        pool = measured_node_pool({h: 50.0 + 10.0 * h for h in range(8)})
        for node in pool.nodes:
            for feature, value in node.features.items():
                assert value in NODE_FEATURES[feature]
        # fastest host gets the fastest bucket
        assert pool.nodes[7].features["gpu_type"] == "D"
        assert pool.nodes[0].features["gpu_type"] == "A"
        # to_dataset works (MCDC grouping path)
        assert pool.to_dataset().n_objects == 8


# ---------------------------------------------------------------------- #
# Elastic rebalancing
# ---------------------------------------------------------------------- #
class TestRebalancing:
    def test_rebalance_fit_matches_serial(self, fit_dataset):
        serial = MGCPL(random_state=1, update_mode="batch").fit(fit_dataset)
        with rpc.local_worker_pool(2) as hosts:
            model = ShardedMGCPL(
                n_shards=4, backend="tcp", hosts=hosts, random_state=1,
                backend_options={"rebalance": True},
            )
            model.fit(fit_dataset)
        np.testing.assert_array_equal(model.labels_, serial.labels_)

    def test_rebalance_moves_load_off_a_slow_host(self, small_clusters):
        """With measured timings faked, the scheduler shifts shards correctly."""
        with rpc.local_worker_pool(2) as hosts:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=4, hosts=hosts, rebalance=True,
            )
            try:
                executor.begin_epoch(3, None)
                # fake measurements: host 0 is 10x slower than host 1
                executor._host_rows[0] = 1000.0
                executor._host_seconds[0] = 10.0
                executor._host_rows[1] = 1000.0
                executor._host_seconds[1] = 1.0
                before = list(executor.placement)
                executor.begin_epoch(3, None)  # boundary -> rebalance hook
                after = list(executor.placement)
                assert executor.rebalance_events, "no rebalance was applied"
                moved = executor.rebalance_events[0]
                assert moved["makespan_after"] < moved["makespan_before"]
                assert after.count(1) > before.count(1)
                # and the executor still computes correctly after the moves
                reference = InProcessShardExecutor(
                    small_clusters.codes, small_clusters.n_categories,
                    shard_indices=executor.shard_indices,
                )
                reference.begin_epoch(3, None)
                modes = small_clusters.codes[[0, 80, 160]]
                theta = np.ones(small_clusters.codes.shape[1])
                np.testing.assert_array_equal(
                    executor.hamming_assign(modes, theta),
                    reference.hamming_assign(modes, theta),
                )
                reference.close()
            finally:
                executor.close()


# ---------------------------------------------------------------------- #
# Option threading: estimators and CLI
# ---------------------------------------------------------------------- #
class TestOptionThreading:
    def test_estimator_validates_backend_options_early(self):
        with pytest.raises(ValueError, match="does not accept option"):
            ShardedMGCPL(
                n_shards=2, backend="serial",
                backend_options={"shard_cache": "/tmp/nope"},
            )

    def test_estimator_passes_options_through(self, tmp_path, small_clusters):
        with rpc.local_worker_pool(2) as hosts:
            model = ShardedMGCPL(
                n_shards=2, backend="tcp", hosts=hosts, random_state=0,
                backend_options={"shard_cache": str(tmp_path), "max_retries": 1},
            )
            model.fit(small_clusters)
        assert model.labels_ is not None
        # the coordinator-side put landed the shards in the cache
        assert any(tmp_path.rglob("*.npz"))

    @staticmethod
    def _backend_namespace(**overrides):
        import argparse

        defaults = dict(
            backend=None, workers=None, max_retries=None,
            heartbeat_interval=None, shard_cache=None,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_cli_flags_require_backend(self):
        from repro.cli import _resolve_backend_args

        with pytest.raises(SystemExit, match="--shard-cache"):
            _resolve_backend_args(self._backend_namespace(shard_cache="/tmp/cache"))

    def test_cli_flags_validate_values(self):
        from repro.cli import _resolve_backend_args

        with pytest.raises(SystemExit, match="--max-retries"):
            _resolve_backend_args(self._backend_namespace(
                backend="tcp", workers="127.0.0.1:1", max_retries=-2,
            ))
        with pytest.raises(SystemExit, match="--heartbeat-interval"):
            _resolve_backend_args(self._backend_namespace(
                backend="tcp", workers="127.0.0.1:1", heartbeat_interval=0.0,
            ))

    def test_cli_rejects_options_on_wrong_backend(self):
        from repro.cli import _resolve_backend_args

        with pytest.raises(SystemExit, match="does not take --shard-cache"):
            _resolve_backend_args(self._backend_namespace(
                backend="serial", shard_cache="/tmp/cache",
            ))

    def test_cli_accepts_full_tcp_option_set(self, tmp_path):
        from repro.cli import _resolve_backend_args

        backend, hosts, options = _resolve_backend_args(self._backend_namespace(
            backend="tcp", workers="127.0.0.1:1,127.0.0.1:2",
            max_retries=4, heartbeat_interval=0.5, shard_cache=str(tmp_path),
        ))
        assert backend == "tcp"
        assert hosts == ["127.0.0.1:1", "127.0.0.1:2"]
        assert options == {
            "max_retries": 4,
            "heartbeat_interval": 0.5,
            "shard_cache": str(tmp_path),
        }

    def test_fitted_model_with_backend_options_persists(
        self, tmp_path, small_clusters
    ):
        """save_model/load_model round-trips the backend_options dict."""
        from repro.persistence import load_model, save_model

        with rpc.local_worker_pool(2) as hosts:
            model = ShardedMGCPL(
                n_shards=2, backend="tcp", hosts=hosts, random_state=0,
                backend_options={"max_retries": 1, "shard_cache": str(tmp_path)},
            )
            model.fit(small_clusters)
            path = save_model(model, tmp_path / "model.npz")
        # Loading needs no live workers: predict serves from the archive.
        loaded = load_model(path)
        assert loaded.get_params()["backend_options"] == {
            "max_retries": 1, "shard_cache": str(tmp_path),
        }
        np.testing.assert_array_equal(
            loaded.predict(small_clusters.codes), model.predict(small_clusters.codes)
        )

    def test_experiment_config_threads_backend_options(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import route_through_backend

        config = ExperimentConfig(
            backend="serial",
            backend_options=(("max_retries", 3),),
        )
        name, extra = route_through_backend("mcdc", config)
        assert name == "mcdc@sharded"
        assert extra["backend_options"] == {"max_retries": 3}
