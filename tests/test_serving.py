"""The serving tier: concurrency contract, snapshots, drain, reconnect.

The contract under test (ISSUE 5): a loopback ``ServingClient.predict`` is
**bit-identical** to calling ``predict`` on the model in process; concurrent
predicts racing an ingest stream only ever observe exact post-batch states
(never a torn one); a snapshot taken under load reloads to an
``EngineState`` identical to the same estimator fed the same batches in one
process; and drain leaves no stuck threads.  Everything here runs under a
hard timeout so a deadlock in the lock or socket code fails fast.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.data.uci.registry import load_dataset
from repro.distributed.transport import TransportError
from repro.persistence import load_model, save_model
from repro.registry import make_clusterer
from repro.serving import ModelServer, ServingClient, serve_model

pytestmark = pytest.mark.timeout(90)


def fit_reference(dataset):
    return make_clusterer("kmodes", n_clusters=dataset.n_clusters_true or 2,
                          n_init=2, random_state=0).fit(dataset)


@pytest.fixture(scope="module")
def vot():
    return load_dataset("Vot")


@pytest.fixture(scope="module")
def vot_model(vot):
    return fit_reference(vot)


@pytest.fixture()
def model_file(vot_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(vot_model, path)
    return path


@pytest.fixture()
def server(model_file):
    server = serve_model(model_file)
    yield server
    server.stop(timeout=10)


# ---------------------------------------------------------------------- #
# Loopback equivalence
# ---------------------------------------------------------------------- #
class TestLoopbackEquivalence:
    @pytest.mark.parametrize("dataset_name", ["Vot", "Bal"])
    def test_predict_bit_identical_to_in_process(self, dataset_name, tmp_path):
        dataset = load_dataset(dataset_name)
        model = fit_reference(dataset)
        path = tmp_path / "m.npz"
        save_model(model, path)
        server = serve_model(path)
        try:
            with ServingClient(server.address) as client:
                np.testing.assert_array_equal(
                    client.predict(dataset), model.predict(dataset)
                )
                # raw coded arrays take the same path as datasets
                np.testing.assert_array_equal(
                    client.predict(dataset.codes), model.predict(dataset.codes)
                )
        finally:
            assert server.stop(timeout=10)

    def test_welcome_and_info_report_model_facts(self, server, vot_model):
        with ServingClient(server.address) as client:
            assert client.server_info["clusterer"] == "KModes"
            assert client.server_info["n_clusters"] == vot_model.n_clusters_
            info = client.info()
            assert info["n_objects"] == vot_model.labels_.shape[0]
            assert info["ingested_batches"] == 0
            assert info["service"] == "repro-serving"

    def test_application_error_reported_session_survives(self, server, vot):
        with ServingClient(server.address) as client:
            bad = np.zeros((4, vot.n_features + 3), dtype=np.int64)
            with pytest.raises(TransportError, match="model server raised"):
                client.predict(bad)
            # the session keeps serving after a reported error
            labels = client.predict(vot.codes[:10])
            assert labels.shape == (10,)

    def test_in_memory_model_with_snapshots_requires_a_path(self, vot_model):
        with pytest.raises(ValueError, match="snapshot_path"):
            ModelServer(vot_model, snapshot_every=1)

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError, match="not been fitted"):
            ModelServer(make_clusterer("kmodes", n_clusters=2))


# ---------------------------------------------------------------------- #
# Ingest + snapshots
# ---------------------------------------------------------------------- #
class TestIngestAndSnapshots:
    def test_ingest_and_snapshot_bit_identical_to_in_process(
        self, model_file, vot, tmp_path
    ):
        batches = [vot.codes[i::4] for i in range(3)]
        snapshot_path = tmp_path / "snapshot.npz"
        server = serve_model(
            model_file, snapshot_path=snapshot_path, snapshot_every=2
        )
        reference = load_model(model_file)
        try:
            with ServingClient(server.address) as client:
                for batch in batches:
                    served_labels = client.ingest(batch)
                    np.testing.assert_array_equal(served_labels, reference.ingest(batch))
                forced = client.snapshot()
                info = client.info()
            assert forced == snapshot_path
            assert info["ingested_batches"] == 3
            assert info["snapshots_taken"] >= 2  # one at the 2nd ingest + forced
        finally:
            assert server.stop(timeout=10)

        loaded = load_model(snapshot_path)
        state, ref_state = loaded.assignment_model_.state, reference.assignment_model_.state
        np.testing.assert_array_equal(state.packed, ref_state.packed)
        np.testing.assert_array_equal(state.valid_counts, ref_state.valid_counts)
        np.testing.assert_array_equal(state.sizes, ref_state.sizes)
        np.testing.assert_array_equal(loaded.labels_, reference.labels_)
        probe = vot.codes[::3]
        np.testing.assert_array_equal(loaded.predict(probe), reference.predict(probe))

    def test_snapshot_writes_are_atomic_no_debris(self, model_file, vot):
        server = serve_model(model_file, snapshot_every=1)
        try:
            with ServingClient(server.address) as client:
                client.ingest(vot.codes[:20])
                client.snapshot()
        finally:
            assert server.stop(timeout=10)
        leftovers = [p for p in model_file.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert load_model(model_file).labels_.shape[0] == vot.n_objects + 20

    def test_periodic_snapshot_fires_while_dirty(self, model_file, vot):
        server = serve_model(model_file, snapshot_interval=0.2)
        try:
            with ServingClient(server.address) as client:
                client.ingest(vot.codes[:10])
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    if client.info()["snapshots_taken"] >= 1:
                        break
                    time.sleep(0.05)
                assert client.info()["snapshots_taken"] >= 1
        finally:
            assert server.stop(timeout=10)

    def test_drain_takes_a_final_snapshot_of_unsaved_ingests(self, model_file, vot):
        server = serve_model(model_file)  # no snapshot triggers configured
        with ServingClient(server.address) as client:
            client.ingest(vot.codes[:15])
        assert server.stop(timeout=10)
        assert server.snapshots_taken == 1  # the drain-time flush
        assert load_model(model_file).labels_.shape[0] == vot.n_objects + 15


# ---------------------------------------------------------------------- #
# Concurrency: N predict clients racing an ingest stream
# ---------------------------------------------------------------------- #
class TestConcurrency:
    N_CLIENTS = 4
    PREDICTS_PER_CLIENT = 12
    N_BATCHES = 3

    def _reference_states(self, model_file, batches, probe):
        """Single-threaded serial execution: the only replies the server may give.

        Returns the reference estimator (after all batches), the probe
        predictions after 0..K batches, and the labels each ingest assigned.
        """
        reference = load_model(model_file)
        allowed = [reference.predict(probe)]
        ingest_labels = []
        for batch in batches:
            ingest_labels.append(reference.ingest(batch))
            allowed.append(reference.predict(probe))
        return reference, allowed, ingest_labels

    def test_concurrent_predicts_match_serial_execution_exactly(
        self, model_file, vot
    ):
        batches = [vot.codes[i :: self.N_BATCHES] for i in range(self.N_BATCHES)]
        probe = vot.codes[::5]
        _, allowed, ingest_labels = self._reference_states(model_file, batches, probe)
        allowed_bytes = {a.tobytes() for a in allowed}

        server = serve_model(model_file)
        failures: list = []
        responses: list = []

        def hammer():
            try:
                with ServingClient(server.address) as client:
                    for _ in range(self.PREDICTS_PER_CLIENT):
                        responses.append(client.predict(probe))
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(exc)

        try:
            threads = [
                threading.Thread(target=hammer) for _ in range(self.N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            with ServingClient(server.address) as writer:
                for batch, expected in zip(batches, ingest_labels):
                    # ingests are serialized, so the served labels must be
                    # bit-identical to the reference's for the same batch
                    np.testing.assert_array_equal(writer.ingest(batch), expected)
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert failures == []
            assert len(responses) == self.N_CLIENTS * self.PREDICTS_PER_CLIENT
            # Every concurrent reply is bit-identical to one of the K+1 serial
            # states: readers never observe a torn or intermediate merge.
            for reply in responses:
                assert reply.tobytes() in allowed_bytes
            # And once the stream is done, the served state is the final one.
            with ServingClient(server.address) as client:
                np.testing.assert_array_equal(client.predict(probe), allowed[-1])
        finally:
            assert server.stop(timeout=10)

    def test_snapshot_under_load_reloads_to_identical_state(self, model_file, vot, tmp_path):
        batches = [vot.codes[i :: self.N_BATCHES] for i in range(self.N_BATCHES)]
        probe = vot.codes[::5]
        reference, _, _ = self._reference_states(model_file, batches, probe)
        snapshot_path = tmp_path / "under-load.npz"

        server = serve_model(model_file, snapshot_path=snapshot_path)
        stop_hammer = threading.Event()
        failures: list = []

        def hammer():
            try:
                with ServingClient(server.address) as client:
                    while not stop_hammer.is_set():
                        client.predict(probe)
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(self.N_CLIENTS)]
        try:
            for thread in threads:
                thread.start()
            with ServingClient(server.address) as writer:
                for batch in batches:
                    writer.ingest(batch)
                path = writer.snapshot()
        finally:
            stop_hammer.set()
            for thread in threads:
                thread.join(timeout=30)
            server_drained = server.stop(timeout=10)
        assert server_drained
        assert not any(thread.is_alive() for thread in threads)
        assert failures == []

        loaded = load_model(path)
        state, ref_state = loaded.assignment_model_.state, reference.assignment_model_.state
        np.testing.assert_array_equal(state.packed, ref_state.packed)
        np.testing.assert_array_equal(state.valid_counts, ref_state.valid_counts)
        np.testing.assert_array_equal(state.sizes, ref_state.sizes)

    def test_drain_leaves_no_stuck_threads(self, model_file, vot):
        server = serve_model(model_file)
        idle_clients = [
            ServingClient(server.address).connect() for _ in range(3)
        ]
        try:
            # each idle session has a live server thread parked between requests
            for client in idle_clients:
                client.predict(vot.codes[:5])
            assert server.stop(timeout=10), "drain timed out"
            assert not any(t.is_alive() for t in server._sessions)
            assert server._serve_thread is not None
            assert not server._serve_thread.is_alive()
        finally:
            for client in idle_clients:
                client.close()

    def test_stalled_mid_frame_client_cannot_block_drain(self, model_file, vot):
        # A slow-loris peer: one header byte, then silence.  The session
        # thread must still notice the drain instead of parking in recv.
        server = serve_model(model_file)
        loris = socket.create_connection((server.host, server.port), timeout=5)
        try:
            loris.sendall(b"\x00")
            with ServingClient(server.address) as client:
                client.predict(vot.codes[:5])  # server is otherwise healthy
            assert server.stop(timeout=10), "stalled peer blocked the drain"
            assert not any(t.is_alive() for t in server._sessions)
        finally:
            loris.close()

    def test_finished_sessions_are_pruned(self, model_file, vot):
        # A long-lived server must not retain one Thread per connection served.
        server = serve_model(model_file)
        try:
            for _ in range(5):
                with ServingClient(server.address) as client:
                    client.predict(vot.codes[:3])
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and server._sessions:
                time.sleep(0.1)
            assert server._sessions == []
        finally:
            assert server.stop(timeout=10)

    def test_client_initiated_shutdown_drains(self, model_file):
        server = serve_model(model_file)
        with ServingClient(server.address) as client:
            client.shutdown_server()
        assert server.drained.wait(timeout=10)

    def test_once_server_exits_after_sessions_finish(self, model_file, vot):
        server = serve_model(model_file, once=True)
        with ServingClient(server.address) as client:
            client.predict(vot.codes[:5])
        assert server.drained.wait(timeout=10)


# ---------------------------------------------------------------------- #
# Connection lifecycle
# ---------------------------------------------------------------------- #
class TestConnectionLifecycle:
    def test_reconnect_on_refused_waits_for_the_server(self, model_file, vot_model, vot):
        # Reserve a port, start the server only after the client began
        # connecting: the refused connects must be retried, not fatal.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        holder = {}

        def late_start():
            time.sleep(0.5)
            holder["server"] = ModelServer(model_file, "127.0.0.1", port).start()

        starter = threading.Thread(target=late_start)
        starter.start()
        try:
            with ServingClient(f"127.0.0.1:{port}", connect_timeout=15) as client:
                np.testing.assert_array_equal(
                    client.predict(vot.codes[:10]), vot_model.predict(vot.codes[:10])
                )
        finally:
            starter.join(timeout=10)
            if "server" in holder:
                holder["server"].stop(timeout=10)

    def test_client_reconnects_after_server_restart(self, model_file, vot):
        first = serve_model(model_file)
        host, port = first.host, first.port
        client = ServingClient(f"{host}:{port}", connect_timeout=10)
        try:
            client.predict(vot.codes[:5])
            assert first.stop(timeout=10)
            with pytest.raises(TransportError):
                client.predict(vot.codes[:5])  # connection died with the server
            second = ModelServer(model_file, host, port).start()
            try:
                # next request reconnects (fresh handshake) transparently
                labels = client.predict(vot.codes[:5])
                assert labels.shape == (5,)
            finally:
                assert second.stop(timeout=10)
        finally:
            client.close()

    def test_connect_to_dead_port_fails_with_transport_error(self):
        with pytest.raises(TransportError, match="cannot connect"):
            ServingClient("127.0.0.1:1", connect_timeout=0.5, retry_interval=0.1).connect()

    def test_serving_client_against_a_shard_worker_fails_cleanly(self, vot):
        from repro.distributed import rpc

        worker = rpc.serve_worker("127.0.0.1:0")
        try:
            with pytest.raises(TransportError):
                ServingClient(worker.address, connect_timeout=2).connect()
        finally:
            worker.shutdown()

    def test_shard_coordinator_against_a_model_server_fails_cleanly(self, model_file, vot):
        from repro.distributed import rpc

        server = serve_model(model_file)
        try:
            with pytest.raises(TransportError):
                rpc.TCPTransport(
                    server.address, vot.codes[:10], list(vot.n_categories)
                )
        finally:
            assert server.stop(timeout=10)


# ---------------------------------------------------------------------- #
# CLI integration
# ---------------------------------------------------------------------- #
class TestServeCLI:
    def test_parser_accepts_serve_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "m.npz", "--listen", "0.0.0.0:9100",
             "--snapshot-every", "10", "--snapshot-path", "s.npz", "--once"]
        )
        assert args.command == "serve"
        assert args.model == "m.npz" and args.snapshot_every == 10 and args.once

    def test_predict_requires_model_or_server(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="MODEL archive path or --server"):
            main(["predict", "Vot"])
        with pytest.raises(SystemExit, match="one or the other"):
            main(["predict", "m.npz", "Vot", "--server", "127.0.0.1:1"])

    def test_serve_missing_model_is_a_usage_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="does not exist"):
            main(["serve", "no-such-model.npz"])

    def test_predict_against_live_server_matches_local_predict(
        self, model_file, capsys
    ):
        from repro.cli import main

        server = serve_model(model_file)
        try:
            assert main(["predict", "--server", server.address, "Vot"]) == 0
            via_server = capsys.readouterr().out
            assert main(["predict", str(model_file), "Vot"]) == 0
            local = capsys.readouterr().out
            assert via_server.splitlines()[0] == local.splitlines()[0]
            assert "assigned" in via_server and "ACC=" in via_server
        finally:
            assert server.stop(timeout=10)


# ---------------------------------------------------------------------- #
# Hot model reload (ISSUE 9): swap the archive under the write lock
# ---------------------------------------------------------------------- #
class TestHotReload:
    @pytest.fixture()
    def other_model_file(self, vot, tmp_path):
        other = make_clusterer(
            "kmodes", n_clusters=3, n_init=2, random_state=1
        ).fit(vot)
        path = tmp_path / "other.npz"
        save_model(other, path)
        return path, other

    def test_reload_swaps_model_without_dropping_the_session(
        self, server, vot, vot_model, other_model_file
    ):
        other_path, other = other_model_file
        with ServingClient(server.address) as client:
            np.testing.assert_array_equal(client.predict(vot), vot_model.predict(vot))
            meta = client.reload(str(other_path))
            assert meta["n_clusters"] == other.n_clusters_
            assert meta["reloads"] == 1
            # Same session, new model — no reconnect happened.
            np.testing.assert_array_equal(client.predict(vot), other.predict(vot))
            assert client.info()["reloads"] == 1

    def test_reload_default_path_rereads_launch_archive(
        self, model_file, vot, vot_model, other_model_file
    ):
        other_path, other = other_model_file
        save_model(other, model_file)  # the archive changed on disk
        server = serve_model(model_file)
        try:
            with ServingClient(server.address) as client:
                # Still serving the old in-memory model until asked.
                meta = client.reload()
                assert meta["path"] == str(model_file)
                np.testing.assert_array_equal(client.predict(vot), other.predict(vot))
        finally:
            assert server.stop(timeout=10)

    def test_reload_missing_path_or_archive_is_reported(self, vot_model, server):
        with ServingClient(server.address) as client:
            with pytest.raises(TransportError, match="(?s)does not exist|No such file"):
                client.reload("/no/such/archive.npz")
            # The session survives the failed reload and the model is intact.
            assert client.info()["reloads"] == 0

    def test_replica_rejects_reload_and_resyncs_after_primary_reload(
        self, server, vot, other_model_file
    ):
        other_path, other = other_model_file
        replica = serve_model(None, replica_of=server.address)
        try:
            with ServingClient(replica.address) as client:
                with pytest.raises(TransportError, match="read replica"):
                    client.reload(str(other_path))
            with ServingClient(server.address) as client:
                client.reload(str(other_path))
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                with ServingClient(replica.address) as client:
                    if client.info()["n_clusters"] == other.n_clusters_:
                        np.testing.assert_array_equal(
                            client.predict(vot), other.predict(vot)
                        )
                        break
                time.sleep(0.25)
            else:
                pytest.fail("replica never resynced to the reloaded model")
        finally:
            assert replica.stop(timeout=10)

    def test_on_ingest_hook_runs_under_the_write_lock(self, model_file, vot):
        seen = []
        server = serve_model(
            model_file, on_ingest=lambda codes, labels: seen.append(
                (codes.shape[0], labels.shape[0])
            )
        )
        try:
            with ServingClient(server.address) as client:
                client.ingest(vot.codes[:7])
                client.ingest(vot.codes[7:12])
            assert seen == [(7, 7), (5, 5)]
        finally:
            assert server.stop(timeout=10)

    def test_on_ingest_must_be_callable(self, vot_model):
        with pytest.raises(TypeError, match="on_ingest"):
            ModelServer(vot_model, on_ingest="not-a-function")
