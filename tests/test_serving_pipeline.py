"""Pipelining, micro-batching, replication, routing: the PR 7 contracts.

What must hold (ISSUE 7):

* batched / pipelined predicts are **bit-identical** to sequential per-row
  predicts — including while an ingest stream races the batcher (every reply
  is some exact post-batch state, the final state is exactly the serial one);
* the compact tagged frame layout round-trips exactly and fails *cleanly*
  under fuzz (truncation, bad dtypes, trailing garbage) — ``TransportError``,
  never a wedged session or batcher thread;
* tag protocol violations (duplicate, unknown, out-of-order beyond the
  window, mid-pipeline disconnect) fail the affected futures and connection
  without taking the server down;
* a read replica observes exactly the primary's post-batch states — no torn
  reads — and keeps serving (last good state) through a primary outage;
* the router round-robins predicts across replicas and sends every ingest to
  the primary, bit-identically.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.data.uci.registry import load_dataset
from repro.distributed.codec import (
    COMPACT_MAGIC,
    pack_compact,
    pack_message,
    recv_frame,
    send_frame,
    unpack_message,
)
from repro.distributed.transport import TransportError
from repro.persistence import load_model, save_model
from repro.registry import make_clusterer
from repro.serving import (
    ModelServer,
    ServingClient,
    ServingRouter,
    route_serving,
    serve_model,
)
from repro.serving.protocol import (
    SERVICE_NAME,
    SERVING_PROTOCOL_VERSION,
    request_tag,
)

pytestmark = pytest.mark.timeout(90)


def fit_reference(dataset):
    return make_clusterer("kmodes", n_clusters=dataset.n_clusters_true or 2,
                          n_init=2, random_state=0).fit(dataset)


def states_equal(a, b):
    return (np.array_equal(a.packed, b.packed)
            and np.array_equal(a.valid_counts, b.valid_counts)
            and np.array_equal(a.sizes, b.sizes)
            and a.n_categories == b.n_categories)


@pytest.fixture(scope="module")
def vot():
    return load_dataset("Vot")


@pytest.fixture(scope="module")
def vot_model(vot):
    return fit_reference(vot)


@pytest.fixture()
def model_file(vot_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(vot_model, path)
    return path


# ---------------------------------------------------------------------- #
# Compact frame layout: round-trip and fuzz
# ---------------------------------------------------------------------- #
class TestCompactCodec:
    def test_roundtrip_supported_dtypes(self):
        for dtype in (np.int64, np.float64, np.int32, np.uint8, np.bool_):
            array = (np.arange(12) % 2 == 0).reshape(3, 4) \
                if dtype is np.bool_ else np.arange(12, dtype=dtype).reshape(3, 4)
            body = pack_compact("predict", {"tag": 7}, codes=array)
            assert body.startswith(COMPACT_MAGIC)
            kind, meta, arrays = unpack_message(body)
            assert kind == "predict" and meta == {"tag": 7}
            np.testing.assert_array_equal(arrays["codes"], array)
            assert arrays["codes"].dtype == array.dtype
            assert arrays["codes"].flags.writeable

    def test_roundtrip_edge_shapes(self):
        for array in (
            np.int64(41),                    # 0-d scalar
            np.empty((0, 5), dtype=np.int64),  # empty batch
            np.arange(8, dtype=np.int64)[::2],  # non-contiguous view
        ):
            kind, meta, arrays = unpack_message(pack_compact("x", {}, v=array))
            assert kind == "x"
            np.testing.assert_array_equal(arrays["v"], np.asarray(array))
            assert arrays["v"].shape == np.asarray(array).shape

    def test_no_array_body(self):
        body = pack_compact("info", {"tag": 3})
        assert body.startswith(COMPACT_MAGIC)
        assert unpack_message(body) == ("info", {"tag": 3}, {})

    def test_unsupported_payloads_fall_back_to_npz(self):
        for kwargs in (
            {"a": np.zeros(3, dtype=np.float32)},           # dtype not listed
            {"a": np.zeros((1, 1, 1, 1, 1), dtype=np.int64)},  # ndim > 4
            {"a": np.zeros(2, dtype=np.int64), "b": np.ones(2, dtype=np.int64)},
        ):
            body = pack_compact("k", {"m": 1}, **kwargs)
            assert not body.startswith(COMPACT_MAGIC)  # npz fallback
            kind, meta, arrays = unpack_message(body)
            assert kind == "k" and meta == {"m": 1}
            assert set(arrays) == set(kwargs)
            for name, array in kwargs.items():
                np.testing.assert_array_equal(arrays[name], array)

    def test_every_truncation_fails_cleanly(self):
        body = pack_compact(
            "predict", {"tag": 9}, codes=np.arange(20, dtype=np.int64).reshape(4, 5)
        )
        for cut in range(len(body)):
            with pytest.raises(TransportError):
                unpack_message(body[:cut])

    def test_trailing_garbage_rejected(self):
        body = pack_compact("predict", {"tag": 1}, codes=np.zeros(3, dtype=np.int64))
        with pytest.raises(TransportError):
            unpack_message(body + b"\x00")

    def test_unlisted_dtype_on_the_wire_rejected(self):
        # Hand-craft a frame claiming a dtype outside the whitelist: the
        # receiver must refuse it rather than np.frombuffer arbitrary bytes.
        good = pack_compact("x", {}, v=np.zeros(2, dtype=np.int64))
        assert b"<i8" in good
        evil = good.replace(b"<i8", b"<f2")
        with pytest.raises(TransportError, match="dtype"):
            unpack_message(evil)

    def test_bad_meta_json_rejected(self):
        import struct

        meta = b"{not json"
        body = COMPACT_MAGIC + struct.pack(">I", len(meta)) + meta + b"\x00\x00"
        with pytest.raises(TransportError, match="malformed compact frame"):
            unpack_message(body)

    def test_request_tag_validation(self):
        assert request_tag({}) is None
        assert request_tag({"tag": 0}) == 0
        assert request_tag({"tag": 41}) == 41
        for bad in (-1, 1.5, "7", True, [1]):
            with pytest.raises(TransportError):
                request_tag({"tag": bad})


# ---------------------------------------------------------------------- #
# Pipelined client against the real server
# ---------------------------------------------------------------------- #
class TestPipelinedPredicts:
    def test_map_predict_bit_identical_to_in_process(self, vot_model, vot):
        batches = [np.ascontiguousarray(vot.codes[i::9]) for i in range(9)]
        expected = [vot_model.predict(b) for b in batches]
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            with ServingClient(server.address) as client:
                results = client.map_predict(batches)
            for got, want in zip(results, expected):
                np.testing.assert_array_equal(got, want)
            info = server.info()
            assert info["predict_batches"] >= 1
            assert info["predict_rows_batched"] == sum(b.shape[0] for b in batches)
        finally:
            assert server.stop(timeout=10)

    def test_futures_resolve_in_any_harvest_order(self, vot_model, vot):
        probe = vot.codes[:6]
        expected = vot_model.predict(probe)
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            with ServingClient(server.address) as client:
                futures = [client.predict_async(probe) for _ in range(20)]
                for future in reversed(futures):  # harvest newest-first
                    np.testing.assert_array_equal(future.result(), expected)
                assert all(f.done() for f in futures)
        finally:
            assert server.stop(timeout=10)

    def test_in_flight_window_is_honoured(self, vot_model, vot):
        probe = vot.codes[:2]
        expected = vot_model.predict(probe)
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            with ServingClient(server.address, max_in_flight=4) as client:
                futures = [client.predict_async(probe) for _ in range(32)]
                assert len(client._pending) <= 4
                for future in futures:
                    np.testing.assert_array_equal(future.result(), expected)
        finally:
            assert server.stop(timeout=10)

    def test_tagged_bad_rows_error_without_wedging_session(self, vot_model, vot):
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            with ServingClient(server.address) as client:
                bad = client.predict_async(np.zeros((2, 99), dtype=np.int64))
                good = client.predict_async(vot.codes[:3])
                with pytest.raises(TransportError, match="model server raised"):
                    bad.result()
                # The same session keeps answering after a tagged error.
                np.testing.assert_array_equal(
                    good.result(), vot_model.predict(vot.codes[:3])
                )
                np.testing.assert_array_equal(
                    client.predict(vot.codes[:5]), vot_model.predict(vot.codes[:5])
                )
        finally:
            assert server.stop(timeout=10)

    def test_mixed_sync_and_async_on_one_session(self, vot_model, vot):
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            with ServingClient(server.address) as client:
                futures = [client.predict_async(vot.codes[:4]) for _ in range(8)]
                info = client.info()  # untagged, while tags are in flight
                assert info["role"] == "primary"
                for future in futures:
                    np.testing.assert_array_equal(
                        future.result(), vot_model.predict(vot.codes[:4])
                    )
        finally:
            assert server.stop(timeout=10)

    def test_batched_pipelined_exact_under_racing_ingest(self, model_file, vot):
        """The acceptance bit: batcher + ingest racing, every reply exact."""
        n_batches = 6
        batches = [vot.codes[i::n_batches] for i in range(n_batches)]
        probe = np.ascontiguousarray(vot.codes[::5])
        reference = load_model(model_file)
        allowed = [reference.predict(probe)]
        ingest_labels = []
        for batch in batches:
            ingest_labels.append(reference.ingest(batch))
            allowed.append(reference.predict(probe))
        allowed_bytes = {a.tobytes() for a in allowed}

        server = serve_model(model_file, max_batch_rows=4096)
        failures: list = []
        replies: list = []

        def hammer():
            try:
                with ServingClient(server.address) as client:
                    for _ in range(5):
                        replies.extend(client.map_predict([probe] * 4))
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        try:
            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            with ServingClient(server.address) as writer:
                for batch, expected in zip(batches, ingest_labels):
                    np.testing.assert_array_equal(writer.ingest(batch), expected)
            for thread in threads:
                thread.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            assert failures == []
            assert len(replies) == 6 * 5 * 4
            for reply in replies:
                # Bit-identical to one of the serial post-batch states —
                # never a torn mid-merge answer, despite batch coalescing.
                assert reply.tobytes() in allowed_bytes
            # Final served state is exactly the serial end state.
            with ServingClient(server.address) as client:
                np.testing.assert_array_equal(client.predict(probe), allowed[-1])
            assert states_equal(
                server.model.assignment_model_.state,
                reference.assignment_model_.state,
            )
        finally:
            assert server.stop(timeout=10)

    def test_malformed_tag_ends_session_but_not_server(self, vot_model, vot):
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            with ServingClient(server.address) as client:
                client.connect()
                send_frame(client._sock, pack_message(
                    "predict", {"tag": -1}, codes=_two_rows(vot)
                ))
                with pytest.raises(TransportError):
                    recv_frame(client._sock)  # server dropped the session
            # ...but new sessions (and the batcher) still work.
            with ServingClient(server.address) as client:
                np.testing.assert_array_equal(
                    client.predict(vot.codes[:4]), vot_model.predict(vot.codes[:4])
                )
        finally:
            assert server.stop(timeout=10)

    def test_client_disconnect_with_tags_in_flight_leaves_batcher_alive(
        self, vot_model, vot
    ):
        server = serve_model(vot_model, max_batch_rows=4096)
        try:
            for _ in range(3):
                rude = ServingClient(server.address).connect()
                for tag in range(10):
                    send_frame(rude._sock, pack_compact(
                        "predict", {"tag": tag}, codes=_two_rows(vot)
                    ))
                rude._sock.close()  # vanish with replies still owed
                rude._pending.clear()
                rude._sock = None
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with ServingClient(server.address) as client:
                    got = client.map_predict([vot.codes[:4]])
                np.testing.assert_array_equal(
                    got[0], vot_model.predict(vot.codes[:4])
                )
                break
        finally:
            assert server.stop(timeout=10)


def _two_rows(vot):
    return np.ascontiguousarray(vot.codes[:2], dtype=np.int64)


# ---------------------------------------------------------------------- #
# Tag protocol violations, via a scripted fake server
# ---------------------------------------------------------------------- #
def scripted_server(script):
    """A one-session fake server; ``script(conn)`` runs after the welcome."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    errors = []

    def run():
        try:
            conn, _ = listener.accept()
            recv_frame(conn)  # hello
            send_frame(conn, pack_message("welcome", {
                "service": SERVICE_NAME, "protocol": SERVING_PROTOCOL_VERSION,
            }))
            script(conn)
            conn.close()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            errors.append(exc)
        finally:
            listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return f"{host}:{port}", thread, errors


class TestTagViolations:
    def test_out_of_order_tagged_responses_are_matched(self):
        def reply_in_reverse(conn):
            tags = []
            for _ in range(3):
                _, meta, _ = unpack_message(recv_frame(conn))
                tags.append(meta["tag"])
            for tag in reversed(tags):
                send_frame(conn, pack_compact(
                    "labels", {"tag": tag, "n": 1},
                    labels=np.asarray([tag], dtype=np.int64),
                ))

        address, thread, errors = scripted_server(reply_in_reverse)
        with ServingClient(address) as client:
            futures = [client.predict_async(np.zeros((1, 2), dtype=np.int64))
                       for _ in range(3)]
            # Matched by tag: future i gets the labels stamped with tag i,
            # even though the wire order was reversed.
            for i, future in enumerate(futures):
                np.testing.assert_array_equal(future.result(), [i])
        thread.join(timeout=10)
        assert errors == []

    def test_unknown_tag_fails_all_outstanding(self):
        def reply_unknown(conn):
            recv_frame(conn)
            send_frame(conn, pack_compact(
                "labels", {"tag": 999, "n": 1},
                labels=np.zeros(1, dtype=np.int64),
            ))

        address, thread, errors = scripted_server(reply_unknown)
        with ServingClient(address) as client:
            future = client.predict_async(np.zeros((1, 2), dtype=np.int64))
            with pytest.raises(TransportError, match="unknown|already-answered"):
                future.result()
            assert client._sock is None  # connection dropped, not wedged
        thread.join(timeout=10)

    def test_duplicate_tag_fails_cleanly(self):
        def reply_twice(conn):
            _, meta, _ = unpack_message(recv_frame(conn))
            tag = meta["tag"]
            for _ in range(2):
                send_frame(conn, pack_compact(
                    "labels", {"tag": tag, "n": 1},
                    labels=np.zeros(1, dtype=np.int64),
                ))
            recv_frame(conn)  # park until the client hangs up

        address, thread, errors = scripted_server(reply_twice)
        with ServingClient(address) as client:
            first = client.predict_async(np.zeros((1, 2), dtype=np.int64))
            np.testing.assert_array_equal(first.result(), [0])
            second = client.predict_async(np.zeros((1, 2), dtype=np.int64))
            # The duplicate (already-answered tag 0) arrives while waiting
            # for tag 1: protocol violation, connection dropped, future fails.
            with pytest.raises(TransportError):
                second.result()
            assert client._sock is None
        thread.join(timeout=10)

    def test_mid_pipeline_disconnect_fails_every_future(self, vot_model, vot):
        def vanish(conn):
            recv_frame(conn)  # read one request, answer nothing
            conn.close()

        address, thread, errors = scripted_server(vanish)
        client = ServingClient(address)
        futures = []
        try:
            for _ in range(4):
                futures.append(
                    client.predict_async(np.zeros((1, 2), dtype=np.int64))
                )
        except TransportError:
            pass  # the disconnect can surface on a send, too
        assert futures  # at least the first went out before the hangup
        for future in futures:
            with pytest.raises(TransportError):
                future.result()
        thread.join(timeout=10)
        # The client recovers: point it at a real server and predict again.
        server = serve_model(vot_model)
        try:
            fresh = ServingClient(server.address)
            np.testing.assert_array_equal(
                fresh.predict(vot.codes[:3]), vot_model.predict(vot.codes[:3])
            )
            fresh.close()
        finally:
            assert server.stop(timeout=10)


# ---------------------------------------------------------------------- #
# Reconnect backoff
# ---------------------------------------------------------------------- #
class TestReconnectBackoff:
    def test_connect_deadline_still_honoured(self):
        # A port nothing listens on: the backoff must give up by the
        # deadline, not spin forever or overshoot by a full max interval.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # freed: connections are now refused
        client = ServingClient(
            f"127.0.0.1:{port}", connect_timeout=0.8, retry_interval=0.05
        )
        started = time.monotonic()
        with pytest.raises(TransportError, match="cannot connect"):
            client.connect()
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, f"backoff overshot the deadline: {elapsed:.1f}s"

    def test_backoff_delays_grow_and_are_capped(self, monkeypatch):
        sleeps = []

        def no_listener(*args, **kwargs):
            raise ConnectionRefusedError(111, "refused")

        monkeypatch.setattr(socket, "create_connection", no_listener)
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        client = ServingClient(
            "127.0.0.1:1", connect_timeout=3600.0,
            retry_interval=0.1, max_retry_interval=0.4,
        )
        # Exhaust a handful of attempts, then stop the clock-free loop.
        original_monotonic = time.monotonic

        def advancing():
            return original_monotonic() + sum(sleeps)

        monkeypatch.setattr(time, "monotonic", advancing)
        client.connect_timeout = sum([0.1, 0.2, 0.4, 0.4, 0.4]) + 0.05
        with pytest.raises(TransportError):
            client.connect()
        assert len(sleeps) >= 2
        # Jittered exponential: each delay is within [0.5, 1.0] x the
        # deterministic schedule, and never above the cap.
        schedule = [min(0.1 * (2 ** i), 0.4) for i in range(len(sleeps))]
        for actual, nominal in zip(sleeps, schedule):
            assert 0.5 * nominal <= actual <= nominal + 1e-9
            assert actual <= 0.4 + 1e-9


# ---------------------------------------------------------------------- #
# Replication
# ---------------------------------------------------------------------- #
class TestReplicaGroup:
    def test_replica_catches_up_exactly_under_concurrent_ingest(
        self, model_file, vot
    ):
        n_batches = 8
        batches = [vot.codes[i::n_batches] for i in range(n_batches)]
        reference = load_model(model_file)
        for batch in batches:
            reference.ingest(batch)

        primary = serve_model(model_file)
        replica = None
        try:
            replica = serve_model(None, replica_of=primary.address)
            stop = threading.Event()
            torn: list = []

            def read_replica():
                # Hammer the replica while deltas land: every reply must be
                # an exact post-batch state of the *replica's* model; a torn
                # read would crash or mismatch inside predict.
                probe = vot.codes[::11]
                with ServingClient(replica.address) as client:
                    while not stop.is_set():
                        labels = client.predict(probe)
                        if labels.shape != (probe.shape[0],):
                            torn.append(labels.shape)

            reader = threading.Thread(target=read_replica)
            reader.start()
            with ServingClient(primary.address) as writer:
                for batch in batches:
                    writer.ingest(batch)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and replica.replica_seq < n_batches:
                time.sleep(0.05)
            stop.set()
            reader.join(timeout=30)
            assert torn == []
            assert replica.replica_seq == n_batches
            assert states_equal(
                replica.model.assignment_model_.state,
                reference.assignment_model_.state,
            )
            np.testing.assert_array_equal(
                replica.model.labels_, reference.labels_
            )
            # Served answers match the caught-up state bit-exactly.
            probe = vot.codes[::3]
            with ServingClient(replica.address) as client:
                np.testing.assert_array_equal(
                    client.predict(probe), reference.predict(probe)
                )
        finally:
            if replica is not None:
                assert replica.stop(timeout=10)
            assert primary.stop(timeout=10)

    def test_replica_rejects_ingest(self, vot_model, vot):
        primary = serve_model(vot_model)
        replica = None
        try:
            replica = serve_model(None, replica_of=primary.address)
            with ServingClient(replica.address) as client:
                with pytest.raises(TransportError, match="read replica"):
                    client.ingest(vot.codes[:5])
                # The session survives the rejected write.
                np.testing.assert_array_equal(
                    client.predict(vot.codes[:5]),
                    vot_model.predict(vot.codes[:5]),
                )
        finally:
            if replica is not None:
                assert replica.stop(timeout=10)
            assert primary.stop(timeout=10)

    def test_replica_serves_last_state_through_primary_outage(
        self, model_file, vot
    ):
        primary = serve_model(model_file)
        replica = None
        try:
            replica = serve_model(
                None, replica_of=primary.address, connect_timeout=5.0
            )
            with ServingClient(primary.address) as writer:
                writer.ingest(vot.codes[:40])
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and replica.replica_seq < 1:
                time.sleep(0.05)
            assert replica.replica_seq == 1
            expected = replica.model.predict(vot.codes[::7])
            assert primary.stop(timeout=10)  # primary dies
            time.sleep(0.3)
            # The replica still answers reads from its last good state.
            with ServingClient(replica.address) as client:
                np.testing.assert_array_equal(
                    client.predict(vot.codes[::7]), expected
                )
                assert client.info()["role"] == "replica"
        finally:
            if replica is not None:
                assert replica.stop(timeout=10)

    def test_replica_requires_no_model_and_reachable_primary(self):
        with pytest.raises(ValueError, match="replica"):
            ModelServer("whatever.npz", replica_of="127.0.0.1:1")
        with pytest.raises(TransportError, match="cannot reach primary"):
            ModelServer(None, replica_of="127.0.0.1:1", connect_timeout=0.3)
        with pytest.raises(TypeError, match="needs a model"):
            ModelServer(None)


# ---------------------------------------------------------------------- #
# Router
# ---------------------------------------------------------------------- #
class TestRouter:
    def test_round_robin_reads_and_primary_writes(self, model_file, vot):
        primary = serve_model(model_file)
        replicas, router = [], None
        try:
            replicas = [
                serve_model(None, replica_of=primary.address) for _ in range(2)
            ]
            router = route_serving(
                primary=primary.address,
                replicas=[r.address for r in replicas],
            )
            probe = vot.codes[::4]
            expected = load_model(model_file).predict(probe)
            # Several sessions: round-robin spreads them over both replicas.
            for _ in range(4):
                with ServingClient(router.address) as client:
                    np.testing.assert_array_equal(client.predict(probe), expected)
                    np.testing.assert_array_equal(
                        client.map_predict([probe[:3]] * 5)[0], expected[:3]
                    )
            assert all(v > 0 for v in router.routed_predicts.values()), (
                router.routed_predicts
            )
            # Ingest goes to the primary (and only the primary).
            before = primary.ingested_batches
            with ServingClient(router.address) as client:
                client.ingest(vot.codes[:25])
                info = client.info()
            assert info["role"] == "router"
            assert info["routed_ingests"] == 1
            assert primary.ingested_batches == before + 1
            assert all(r.ingested_batches == 0 for r in replicas)
        finally:
            if router is not None:
                assert router.stop(timeout=10)
            for replica in replicas:
                assert replica.stop(timeout=10)
            assert primary.stop(timeout=10)

    def test_read_only_fleet_rejects_ingest(self, vot_model, vot):
        backend = serve_model(vot_model)
        router = None
        try:
            router = route_serving(replicas=[backend.address])
            with ServingClient(router.address) as client:
                np.testing.assert_array_equal(
                    client.predict(vot.codes[:5]),
                    vot_model.predict(vot.codes[:5]),
                )
                with pytest.raises(TransportError, match="read-only fleet"):
                    client.ingest(vot.codes[:5])
        finally:
            if router is not None:
                assert router.stop(timeout=10)
            assert backend.stop(timeout=10)

    def test_router_requires_some_backend(self):
        with pytest.raises(ValueError, match="primary and/or replicas"):
            ServingRouter()


class TestRouterFailover:
    """A killed read replica is evicted, retried elsewhere, and reinstated."""

    def test_dead_replica_evicted_and_predicts_keep_succeeding(
        self, vot_model, vot
    ):
        survivor = serve_model(vot_model)
        victim = serve_model(vot_model)
        router = None
        probe = vot.codes[:10]
        expected = vot_model.predict(probe)
        try:
            router = route_serving(
                replicas=[survivor.address, victim.address],
                probe_interval=60.0, connect_timeout=2.0,
            )
            with ServingClient(router.address) as client:
                np.testing.assert_array_equal(client.predict(probe), expected)
            victim.shutdown()
            # Enough sessions to be routed at the corpse at least once: the
            # failover must be invisible to every one of them.
            for _ in range(4):
                with ServingClient(router.address) as client:
                    np.testing.assert_array_equal(client.predict(probe), expected)
            assert router.dead_backends() == [victim.address]
            with ServingClient(router.address) as client:
                assert client.info()["dead_backends"] == [victim.address]
        finally:
            if router is not None:
                assert router.stop(timeout=10)
            assert survivor.stop(timeout=10)
            victim.shutdown()

    def test_dead_replica_reinstated_after_probe_interval(self, vot_model, vot):
        backends = [serve_model(vot_model) for _ in range(2)]
        router = None
        probe = vot.codes[:10]
        try:
            router = route_serving(
                replicas=[b.address for b in backends],
                probe_interval=0.2, connect_timeout=2.0,
            )
            # Falsely declare a healthy backend dead: the next probe-due
            # request must find it alive and put it back in the rotation.
            router._mark_backend_dead(backends[0].address)
            assert router.dead_backends() == [backends[0].address]
            time.sleep(0.3)
            for _ in range(3):
                with ServingClient(router.address) as client:
                    client.predict(probe)
            assert router.dead_backends() == []
        finally:
            if router is not None:
                assert router.stop(timeout=10)
            for backend in backends:
                assert backend.stop(timeout=10)

    def test_every_backend_dead_yields_clean_error(self, vot_model, vot):
        backend = serve_model(vot_model)
        router = None
        try:
            router = route_serving(
                replicas=[backend.address],
                probe_interval=0.1, connect_timeout=0.5,
            )
            backend.shutdown()
            with ServingClient(router.address) as client:
                with pytest.raises(TransportError, match="no read backend reachable"):
                    client.predict(vot.codes[:5])
        finally:
            if router is not None:
                assert router.stop(timeout=10)
            backend.shutdown()


# ---------------------------------------------------------------------- #
# Warm-up and CLI surface
# ---------------------------------------------------------------------- #
class TestWarmupAndCli:
    def test_warm_up_runs_the_full_predict_path(self, vot_model):
        server = ModelServer(vot_model, once=True)
        try:
            result = server.warm_up()
            assert isinstance(result, bool)
            assert server.model.assignment_model_._cache is not None
        finally:
            server.shutdown()

    def test_parser_accepts_serving_tier_options(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([
            "serve", "model.npz", "--batch-rows", "512",
            "--batch-delay-ms", "2.5", "--no-warmup",
        ])
        assert args.batch_rows == 512
        assert args.batch_delay_ms == 2.5
        assert args.no_warmup is True
        assert args.replica_of is None
        args = parser.parse_args(["serve", "--replica-of", "h:1"])
        assert args.model is None and args.replica_of == "h:1"
        args = parser.parse_args([
            "route", "--primary", "h:1", "--replicas", "h:2,h:3",
        ])
        assert args.command == "route"
        assert args.primary == "h:1" and args.replicas == "h:2,h:3"

    def test_serve_needs_exactly_one_model_source(self):
        from repro.cli import _serve, build_parser

        parser = build_parser()
        with pytest.raises(SystemExit, match="exactly one model source"):
            _serve(parser.parse_args(["serve"]))
        with pytest.raises(SystemExit, match="exactly one model source"):
            _serve(parser.parse_args(
                ["serve", "model.npz", "--replica-of", "h:1"]
            ))
