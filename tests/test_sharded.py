"""Equivalence tests for the sharded clustering runtime.

The contract under test (ISSUE 2): shard-local sweeps + global count merge
reproduce the serial estimators — exactly for the merged counts and for
CAME, and to floating-point tolerance for MGCPL's learning trajectory
(shard-wise partial sums regroup float additions).
"""

import numpy as np
import pytest

from repro.core import CAME, MCDC, MGCPL
from repro.core.mgcpl import cluster_weight_from_delta, winning_ratio
from repro.core.sync import InProcessShardExecutor, SweepBroadcast, contiguous_shards
from repro.data.uci.registry import load_dataset
from repro.distributed import (
    MultiGranularPartitioner,
    ShardedCAME,
    ShardedCoordinator,
    ShardedMCDC,
    ShardedMGCPL,
    resolve_shard_indices,
)
from repro.engine import make_engine
from repro.metrics import adjusted_rand_index


class TestShardResolution:
    def test_contiguous_split_covers_everything(self):
        indices = resolve_shard_indices(101, 4)
        assert len(indices) == 4
        assert np.array_equal(np.sort(np.concatenate(indices)), np.arange(101))

    def test_more_shards_than_objects_clamped(self):
        indices = resolve_shard_indices(3, 8)
        assert len(indices) == 3

    def test_assignment_vector(self):
        assignment = np.array([0, 1, 0, 2, 1])
        indices = resolve_shard_indices(5, assignment)
        assert [list(idx) for idx in indices] == [[0, 2], [1, 4], [3]]

    def test_partition_plan_backs_sharding(self, small_clusters):
        plan = MultiGranularPartitioner(3, random_state=0).fit_partition(small_clusters)
        indices = resolve_shard_indices(small_clusters.n_objects, plan)
        assert np.array_equal(
            np.sort(np.concatenate(indices)), np.arange(small_clusters.n_objects)
        )

    def test_incomplete_cover_rejected(self):
        with pytest.raises(ValueError):
            resolve_shard_indices(10, [np.arange(4)])
        with pytest.raises(ValueError):
            resolve_shard_indices(4, [np.array([0, 1]), np.array([1, 2])])


class TestSweepProtocol:
    """One LocalUpdate/GlobalStep round is exact regardless of the sharding."""

    def _broadcast(self, state, k, d):
        return SweepBroadcast(
            state=state,
            u=cluster_weight_from_delta(np.ones(k)),
            rho=winning_ratio(np.zeros(k)),
            omega=np.full((d, k), 1.0 / d),
            blocked=(state.sizes <= 0),
        )

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    def test_sweep_outcome_matches_single_shard(self, small_clusters, n_shards):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        n = codes.shape[0]
        k, d = 6, codes.shape[1]
        rng = np.random.default_rng(0)
        labels = rng.integers(0, k, size=n).astype(np.int64)

        reference = InProcessShardExecutor(codes, cats, contiguous_shards(n, 1))
        sharded = InProcessShardExecutor(codes, cats, contiguous_shards(n, n_shards))
        state_ref = reference.begin_epoch(k, labels)
        state_sh = sharded.begin_epoch(k, labels)
        np.testing.assert_array_equal(state_ref.packed, state_sh.packed)

        out_ref = reference.sweep(self._broadcast(state_ref, k, d))
        out_sh = sharded.sweep(self._broadcast(state_sh, k, d))
        # Assignments come from per-object argmax over identical scores.
        np.testing.assert_array_equal(out_ref.labels, out_sh.labels)
        np.testing.assert_array_equal(out_ref.state.packed, out_sh.state.packed)
        np.testing.assert_array_equal(out_ref.win_counts, out_sh.win_counts)
        np.testing.assert_allclose(out_ref.win_gain, out_sh.win_gain, atol=1e-12)
        np.testing.assert_allclose(out_ref.rival_pen, out_sh.rival_pen, atol=1e-12)
        assert out_ref.changed == out_sh.changed


class TestShardedMGCPL:
    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    def test_matches_serial_on_synthetic(self, small_clusters, n_shards):
        serial = MGCPL(random_state=0).fit(small_clusters)
        sharded = ShardedMGCPL(
            n_shards=n_shards, backend="serial", random_state=0
        ).fit(small_clusters)
        assert adjusted_rand_index(serial.labels_, sharded.labels_) >= 0.99
        assert sharded.kappa_ == serial.kappa_

    @pytest.mark.parametrize("dataset_name", ["Vot", "Bal"])
    def test_matches_serial_on_uci_analogues(self, dataset_name):
        dataset = load_dataset(dataset_name)
        serial = MGCPL(random_state=7).fit(dataset)
        sharded = ShardedMGCPL(n_shards=4, backend="serial", random_state=7).fit(dataset)
        assert adjusted_rand_index(serial.labels_, sharded.labels_) >= 0.95
        assert abs(sharded.result_.final_k - serial.result_.final_k) <= 1

    def test_process_backend_matches_serial(self, small_clusters):
        serial = MGCPL(random_state=1).fit(small_clusters)
        sharded = ShardedMGCPL(
            n_shards=2, backend="process", random_state=1
        ).fit(small_clusters)
        assert adjusted_rand_index(serial.labels_, sharded.labels_) >= 0.99

    def test_partition_plan_sharding(self, small_clusters):
        plan = MultiGranularPartitioner(3, random_state=0).fit_partition(small_clusters)
        sharded = ShardedMGCPL(n_shards=plan, backend="serial", random_state=0)
        sharded.fit(small_clusters)
        assert sharded.labels_.shape[0] == small_clusters.n_objects

    def test_online_mode_rejected(self):
        with pytest.raises(ValueError):
            ShardedMGCPL(update_mode="online")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardedMGCPL(backend="thread")


class TestShardedCAME:
    def test_bit_identical_to_serial(self, small_clusters):
        gamma = MGCPL(random_state=3).fit(small_clusters).encoding_
        serial = CAME(n_clusters=3, random_state=5).fit(gamma)
        sharded = ShardedCAME(
            n_clusters=3, n_shards=4, backend="serial", random_state=5
        ).fit(gamma)
        np.testing.assert_array_equal(serial.labels_, sharded.labels_)
        assert serial.objective_ == sharded.objective_
        np.testing.assert_array_equal(serial.modes_, sharded.modes_)
        np.testing.assert_allclose(serial.feature_weights_, sharded.feature_weights_)


class TestShardedMCDC:
    def test_matches_serial_pipeline(self, small_clusters):
        serial = MCDC(n_clusters=3, random_state=11).fit(small_clusters)
        sharded = ShardedMCDC(
            n_clusters=3, n_shards=3, backend="serial", random_state=11
        ).fit(small_clusters)
        assert adjusted_rand_index(serial.labels_, sharded.labels_) >= 0.95
        assert sharded.kappa_ == serial.kappa_

    def test_process_backend_pipeline(self, tiny_clusters):
        sharded = ShardedMCDC(
            n_clusters=2, n_shards=2, backend="process", n_init=2, random_state=0
        ).fit(tiny_clusters)
        assert adjusted_rand_index(tiny_clusters.labels, sharded.labels_) >= 0.8


class TestShardedCoordinator:
    def test_rebuild_merges_exactly(self, small_clusters):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 5, size=codes.shape[0]).astype(np.int64)
        with ShardedCoordinator(codes, cats, shards=3, backend="serial") as coordinator:
            coordinator.begin_epoch(5, labels)
            merged = coordinator.rebuild(labels)
        full = make_engine(codes, cats, 5, labels=labels).snapshot()
        np.testing.assert_array_equal(merged.packed, full.packed)
        np.testing.assert_array_equal(merged.sizes, full.sizes)

    def test_hamming_assign_matches_full_engine(self, small_clusters):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        rng = np.random.default_rng(4)
        modes = codes[rng.choice(codes.shape[0], size=4, replace=False)]
        theta = np.full(codes.shape[1], 1.0 / codes.shape[1])
        with ShardedCoordinator(codes, cats, shards=4, backend="serial") as coordinator:
            coordinator.begin_epoch(4, None)
            labels = coordinator.hamming_assign(modes, theta)
        full = make_engine(codes, cats, 4)
        expected = np.argmin(full.hamming_distances(modes, theta), axis=1)
        np.testing.assert_array_equal(labels, expected)

    def test_process_backend_round_trip(self, tiny_clusters):
        codes, cats = tiny_clusters.codes, list(tiny_clusters.n_categories)
        labels = np.zeros(codes.shape[0], dtype=np.int64)
        with ShardedCoordinator(codes, cats, shards=2, backend="process") as coordinator:
            state = coordinator.begin_epoch(2, labels)
        full = make_engine(codes, cats, 2, labels=labels).snapshot()
        np.testing.assert_array_equal(state.packed, full.packed)
