"""Lifecycle and equivalence tests for the ``"shm"`` shared-memory backend.

Three properties matter beyond producing the right numbers:

* **Equivalence** — a sharded fit over shm workers is bit-identical to the
  in-process ``"serial"`` executor (the shards see the same rows, the merge
  is the same exact integer-count merge).
* **No leaks on the happy path** — ``close()`` unlinks the segment and the
  resident worker pools hold no mapping afterwards, so ``/dev/shm`` is
  clean after every fit.
* **No leaks on crashes** — if the coordinator process dies without calling
  ``close()`` (SIGKILL, no atexit), the segment is still reclaimed within a
  few seconds by the worker watchdog / resource-tracker safety net.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from multiprocessing import resource_tracker, shared_memory

import numpy as np
import pytest

from repro.core.mgcpl import cluster_weight_from_delta, winning_ratio
from repro.core.sync import SweepBroadcast
from repro.data.dataset import CategoricalDataset
from repro.distributed import ShardedMGCPL, shm
from repro.distributed.transport import (
    TransportError,
    available_backends,
    get_backend_spec,
    make_executor,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module", autouse=True)
def _reclaim_resident_pools():
    """Leave no idle worker processes behind for the rest of the suite."""
    yield
    shm.shutdown()


@pytest.fixture(scope="module")
def dataset() -> CategoricalDataset:
    rng = np.random.default_rng(8)
    codes = rng.integers(0, 5, size=(600, 7)).astype(np.int64)
    codes[rng.random(codes.shape) < 0.05] = -1
    return CategoricalDataset.from_codes(codes, n_categories=[5] * 7)


def segment_exists(name: str) -> bool:
    """Portable probe: can the segment still be attached by name?

    The probe must not *adopt* the segment into this process's resource
    tracker (that would unlink it at interpreter exit and mask leaks), so
    the registration is withdrawn right after a successful attach.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    segment.close()
    return True


def test_backend_registered():
    assert "shm" in available_backends()
    spec = get_backend_spec("sharedmem")
    assert spec.name == "shm"
    assert "mp_context" in spec.options


def test_sweep_matches_serial(dataset):
    codes, cats = dataset.codes, dataset.n_categories
    k, d = 6, dataset.n_features
    rng = np.random.default_rng(0)
    labels = rng.integers(0, k, size=dataset.n_objects)
    omega = rng.random((d, k))

    def run(executor):
        state = executor.begin_epoch(k, labels)
        outs = []
        for _ in range(2):
            broadcast = SweepBroadcast(
                state=state,
                u=cluster_weight_from_delta(np.ones(k)),
                rho=winning_ratio(np.zeros(k)),
                omega=omega,
                blocked=(state.sizes <= 0),
            )
            out = executor.sweep(broadcast)
            state = out.state
            outs.append(out)
        return outs

    with make_executor("serial", codes, cats, shards=3) as serial_ex:
        serial_outs = run(serial_ex)
    with make_executor("shm", codes, cats, shards=3) as shm_ex:
        shm_outs = run(shm_ex)
    for a, b in zip(serial_outs, shm_outs):
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.state.packed, b.state.packed)
        assert np.array_equal(a.win_counts, b.win_counts)
        assert np.array_equal(a.win_sim_total, b.win_sim_total)


def test_sharded_fit_matches_serial(dataset):
    serial = ShardedMGCPL(
        k0=5, n_shards=3, backend="serial", random_state=0, max_epochs=3
    ).fit(dataset)
    shm_fit = ShardedMGCPL(
        k0=5, n_shards=3, backend="shm", random_state=0, max_epochs=3
    ).fit(dataset)
    assert np.array_equal(serial.labels_, shm_fit.labels_)
    assert np.array_equal(serial.encoding_, shm_fit.encoding_)


def test_scattered_shard_indices(dataset):
    """Non-contiguous shards work: the segment layout is shard-permuted."""
    rng = np.random.default_rng(4)
    assignments = rng.integers(0, 3, size=dataset.n_objects)
    codes, cats = dataset.codes, dataset.n_categories
    labels = rng.integers(0, 4, size=dataset.n_objects)
    with make_executor("serial", codes, cats, shards=assignments) as ex:
        want = ex.begin_epoch(4, labels)
    with make_executor("shm", codes, cats, shards=assignments) as ex:
        got = ex.begin_epoch(4, labels)
    assert np.array_equal(want.packed, got.packed)
    assert np.array_equal(want.sizes, got.sizes)


def test_close_unlinks_segment(dataset):
    executor = make_executor("shm", dataset.codes, dataset.n_categories, shards=2)
    name = executor._segment.name
    assert name.startswith("repro_shm_")
    assert segment_exists(name)
    executor.close()
    assert not segment_exists(name)
    executor.close()  # idempotent
    with pytest.raises(TransportError):
        executor.begin_epoch(3, None)


def test_fit_leaves_no_segment(dataset):
    ShardedMGCPL(k0=4, n_shards=2, backend="shm", random_state=1, max_epochs=2).fit(
        dataset
    )
    pid = os.getpid()
    if os.path.isdir("/dev/shm"):
        leaked = [
            entry
            for entry in os.listdir("/dev/shm")
            if entry.startswith(f"repro_shm_{pid}_")
        ]
        assert leaked == []


def test_resident_pools_reused(dataset):
    shm.shutdown()
    codes, cats = dataset.codes, dataset.n_categories
    with make_executor("shm", codes, cats, shards=2) as executor:
        executor.begin_epoch(3, None)
    assert shm.resident_pool_size() >= 2
    before = shm.resident_pool_size()
    with make_executor("shm", codes, cats, shards=2) as executor:
        # The two resident pools were taken back out of the free list.
        assert shm.resident_pool_size() == before - 2
        executor.begin_epoch(3, None)
    assert shm.resident_pool_size() == before
    shm.shutdown()
    assert shm.resident_pool_size() == 0


def test_worker_death_raises_transport_error(dataset):
    codes, cats = dataset.codes, dataset.n_categories
    executor = make_executor("shm", codes, cats, shards=2)
    try:
        executor.begin_epoch(3, None)
        pool = executor._transports[0]._pool
        for worker in pool._processes.values():
            os.kill(worker.pid, signal.SIGKILL)
        with pytest.raises(TransportError):
            for _ in range(5):
                executor.begin_epoch(3, None)
                time.sleep(0.1)
    finally:
        name = executor._segment.name
        executor.close()
    # The broken pool was discarded, not recycled, and the segment is gone.
    assert not segment_exists(name)


def test_too_many_shards_rejected(dataset):
    with pytest.raises(ValueError, match="resident worker pools"):
        make_executor(
            "shm",
            np.zeros((shm.MAX_SHM_SHARDS + 1, 2), dtype=np.int64),
            [1, 1],
            shards=shm.MAX_SHM_SHARDS + 1,
        )


def test_unknown_option_rejected(dataset):
    with pytest.raises(ValueError, match="does not accept option"):
        make_executor("shm", dataset.codes, dataset.n_categories, shards=2, hosts=["x"])


def test_coordinator_crash_reclaims_segment():
    """SIGKILL the coordinator mid-fit: the segment must still disappear.

    The coordinator never runs ``close()`` or its atexit hook.  Reclamation
    comes from the worker watchdog (orphaned workers unlink and exit) backed
    by the coordinator's resource tracker.
    """
    child = (
        "import os, signal, sys\n"
        "sys.path.insert(0, 'src')\n"
        "import numpy as np\n"
        "from repro.distributed.transport import make_executor\n"
        "codes = np.random.default_rng(0).integers(0, 4, size=(400, 5)).astype(np.int64)\n"
        "ex = make_executor('shm', codes, [4]*5, shards=2)\n"
        "ex.begin_epoch(3, None)\n"
        "print(ex._segment.name, flush=True)\n"
        "os.kill(os.getpid(), signal.SIGKILL)\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", child],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=REPO_ROOT,
    )
    try:
        name = proc.stdout.readline().strip()
        proc.wait(timeout=30)
    finally:
        proc.stdout.close()
        if proc.poll() is None:  # pragma: no cover - hung child
            proc.kill()
    assert name.startswith("repro_shm_")
    assert proc.returncode == -signal.SIGKILL
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if not segment_exists(name):
            return
        time.sleep(0.25)
    pytest.fail("shared-memory segment leaked after coordinator SIGKILL")
