"""The streaming-native sharded runtime (ISSUE 9).

The contract under test: the mini-batch online mode driven by
:class:`StreamingCoordinator` over ≥2 real loopback TCP workers is
**bit-identical** to the serial ``update_mode="online"`` reference on the
same seed; appends extend resident workers in place and survive a
``kill -9`` mid-stream (recovery re-ships the shard *including* its
appends, so the stream converges to the no-failure state); a warm
``refit`` after appends ships zero shard payload bytes; hot-shard splits
change the topology but never the numerics; and the shard cache honours
an LRU byte budget.  The coordinator-side similarity patching is pinned
against the engine's own arithmetic, element for element.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core.mgcpl import MGCPL
from repro.core.sync import InProcessShardExecutor, ShardWorker
from repro.data import make_drift_stream
from repro.data.generators import make_categorical_clusters
from repro.data.dataset import CategoricalDataset
from repro.distributed import StreamingMGCPL, parse_byte_size, shard_content_key
from repro.distributed.rpc import WorkerServer, local_worker_pool
from repro.distributed.shardcache import CACHE_MAX_ENV, ShardCache
from repro.distributed.streaming import _exact_similarity, _pack_offsets
from repro.engine import make_engine
from repro.engine.packed import PackedFrequencyEngine

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def stream_dataset():
    return make_categorical_clusters(
        n_objects=240, n_features=6, n_clusters=3, random_state=11,
        name="streaming-fit",
    )


@pytest.fixture(scope="module")
def tcp_hosts():
    with local_worker_pool(2) as hosts:
        yield hosts


def serial_online(dataset, **params):
    params.setdefault("random_state", 0)
    return MGCPL(update_mode="online", **params).fit(dataset)


def spawn_worker_process():
    """Launch ``repro worker`` in a subprocess; returns (process, address)."""
    cmd = [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"]
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True, env=env)
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    if not match:  # pragma: no cover - diagnostics for a broken spawn
        process.kill()
        raise RuntimeError(f"worker printed {line!r} instead of its address")
    return process, match.group(1)


# ---------------------------------------------------------------------- #
# Engine layer: in-place row extension
# ---------------------------------------------------------------------- #
class TestEngineAppendRows:
    def make(self, codes, ncat, k=3):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, k, size=codes.shape[0])
        return make_engine(codes, ncat, k, kind="dense", labels=labels), labels

    def test_append_extends_in_place_bit_identically(self):
        rng = np.random.default_rng(3)
        ncat = [4, 5, 3]
        codes = rng.integers(0, 3, size=(40, 3)).astype(np.int64)
        extra = rng.integers(0, 3, size=(9, 3)).astype(np.int64)
        engine, _ = self.make(codes, ncat)
        n_after = engine.append_rows(extra)
        assert n_after == 49
        fresh = make_engine(
            np.concatenate([codes, extra]), ncat, 3, kind="dense",
            labels=np.zeros(49, dtype=np.int64),
        )
        np.testing.assert_array_equal(engine.codes, fresh.codes)
        np.testing.assert_array_equal(engine._packed_codes, fresh._packed_codes)
        if getattr(engine, "_onehot", None) is not None:
            np.testing.assert_array_equal(engine._onehot, fresh._onehot)

    def test_append_rejects_wrong_width(self):
        engine, _ = self.make(np.zeros((5, 3), dtype=np.int64), [2, 2, 2], k=2)
        with pytest.raises(ValueError):
            engine.append_rows(np.zeros((2, 4), dtype=np.int64))

    def test_append_rejects_out_of_vocabulary(self):
        engine, _ = self.make(np.zeros((5, 2), dtype=np.int64), [2, 2], k=2)
        with pytest.raises(ValueError):
            engine.append_rows(np.full((1, 2), 7, dtype=np.int64))


# ---------------------------------------------------------------------- #
# Worker verbs: append / split / online_sims
# ---------------------------------------------------------------------- #
class TestWorkerStreamingVerbs:
    def worker(self, n=20, d=4, seed=5):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 3, size=(n, d)).astype(np.int64)
        return ShardWorker(codes, [3] * d), codes

    def test_append_extends_rows_and_labels(self):
        worker, codes = self.worker()
        worker.begin_epoch(2, np.zeros(20, dtype=np.int64))
        extra = np.ones((4, 4), dtype=np.int64)
        assert worker.append(extra) == 24
        assert worker.codes.shape[0] == 24
        np.testing.assert_array_equal(worker.labels[20:], [-1, -1, -1, -1])
        np.testing.assert_array_equal(worker.codes[20:], extra)

    def test_append_validates_width(self):
        worker, _ = self.worker()
        with pytest.raises(ValueError):
            worker.append(np.zeros((2, 7), dtype=np.int64))

    def test_split_truncates_in_place(self):
        worker, codes = self.worker()
        worker.begin_epoch(2, np.zeros(20, dtype=np.int64))
        assert worker.split(12) == 12
        assert worker.codes.shape[0] == 12
        assert worker.labels.shape[0] == 12
        np.testing.assert_array_equal(worker.codes, codes[:12])

    @pytest.mark.parametrize("bad", [0, 20, 25, -3])
    def test_split_rejects_degenerate_counts(self, bad):
        worker, _ = self.worker()
        with pytest.raises(ValueError):
            worker.split(bad)

    def test_online_sims_matches_engine_similarity(self):
        worker, codes = self.worker(n=30)
        labels = np.random.default_rng(1).integers(0, 3, size=30)
        worker.begin_epoch(3, labels)
        reference = make_engine(codes, [3] * 4, 3, kind="dense", labels=labels)
        state = reference.snapshot()
        rows = np.array([0, 7, 29], dtype=np.int64)
        exclude = labels[rows]
        sims = worker.online_sims(rows, exclude, state)
        for j, i in enumerate(rows):
            expected = reference.similarity_object(
                codes[i], exclude_cluster=int(labels[i])
            )
            np.testing.assert_array_equal(sims[j], expected)

    def test_online_sims_requires_an_epoch(self):
        worker, _ = self.worker()
        with pytest.raises(RuntimeError):
            worker.online_sims(
                np.array([0]), np.array([0]),
                make_engine(worker.codes, [3] * 4, 2, kind="dense").snapshot(),
            )


# ---------------------------------------------------------------------- #
# The bit-identity precondition: coordinator patching == engine arithmetic
# ---------------------------------------------------------------------- #
class TestExactSimilarityPinning:
    """``_exact_similarity`` must reproduce ``similarity_object`` bitwise.

    This pins the floating-point contract the streaming mode rests on:
    numpy's pairwise summation gives the same bits for a contiguous 1-d
    ``s.sum()`` (the patch path) as for the matching row of the engine's
    2-d reduction — including the leave-one-out branch and feature
    weighting.  If a numpy upgrade ever broke this, streaming bit-identity
    would silently become approximate; this test makes it loud.
    """

    @pytest.mark.parametrize("use_omega", [False, True])
    @pytest.mark.parametrize("missing", [False, True])
    def test_patch_equals_engine_row(self, use_omega, missing):
        rng = np.random.default_rng(42)
        d, k, n = 7, 4, 60
        ncat = [3, 4, 2, 5, 3, 4, 2]
        codes = np.stack(
            [rng.integers(0, m, size=n) for m in ncat], axis=1
        ).astype(np.int64)
        if missing:
            mask = rng.random(codes.shape) < 0.2
            codes[mask] = -1
        labels = rng.integers(0, k, size=n)
        engine = PackedFrequencyEngine(codes, ncat, k)
        engine.rebuild(labels)
        state = engine.snapshot()
        omega = rng.random((d, k)) if use_omega else None
        offsets = _pack_offsets(ncat)
        packed = np.where(codes >= 0, codes + offsets[None, :], -1)
        for i in [0, 13, 59]:
            excl = int(labels[i])
            expected = engine.similarity_object(
                codes[i], feature_weights=omega, exclude_cluster=excl
            )
            for cluster in range(k):
                got = _exact_similarity(
                    state, packed[i], cluster, excl, omega, d
                )
                assert got == expected[cluster], (i, cluster)


# ---------------------------------------------------------------------- #
# Mini-batch online mode: bit-identical to the serial reference
# ---------------------------------------------------------------------- #
class TestStreamingBitIdentity:
    @pytest.mark.parametrize("block_rows", [17, 64, 100_000])
    def test_tcp_fleet_matches_serial_online(
        self, stream_dataset, tcp_hosts, block_rows
    ):
        reference = serial_online(stream_dataset)
        with StreamingMGCPL(
            hosts=tcp_hosts, block_rows=block_rows, random_state=0
        ) as streaming:
            streaming.fit(stream_dataset)
            assert streaming.n_clusters_ == reference.n_clusters_
            np.testing.assert_array_equal(streaming.labels_, reference.labels_)
            stats = streaming.last_executor_.transport_stats()
        assert stats["n_shards"] == 2
        assert stats["payload_bytes_shipped"] > 0  # the one cold handshake

    def test_in_process_executor_supports_online_sims_too(self, stream_dataset):
        """The sync (serial) executor speaks the same verb — the streaming
        coordinator is transport-agnostic."""
        executor = InProcessShardExecutor(
            stream_dataset.codes, stream_dataset.n_categories
        )
        labels = np.zeros(stream_dataset.n_objects, dtype=np.int64)
        executor.begin_epoch(2, labels)
        parts = executor.online_sims(
            make_engine(
                stream_dataset.codes, stream_dataset.n_categories, 2,
                kind="dense", labels=labels,
            ).snapshot(),
            [np.array([0, 1])],
            [np.array([0, 0])],
        )
        assert len(parts) == 1 and parts[0].shape == (2, 2)

    def test_hot_shard_splits_do_not_perturb_results(
        self, stream_dataset, tcp_hosts
    ):
        reference = serial_online(stream_dataset)
        with StreamingMGCPL(
            hosts=tcp_hosts, block_rows=32, split_rows=50, random_state=0
        ) as streaming:
            streaming.fit(stream_dataset)
            np.testing.assert_array_equal(streaming.labels_, reference.labels_)
            executor = streaming.last_executor_
            stats = executor.transport_stats()
            assert stats["splits"] >= 1
            assert stats["n_shards"] > 2
            for event in executor.split_events:
                assert event["rows_kept"] >= 1 and event["rows_moved"] >= 1

    def test_rejects_batch_mode_and_loop_engine(self):
        with pytest.raises(ValueError, match="online"):
            StreamingMGCPL(hosts=["127.0.0.1:1"], update_mode="batch")
        with pytest.raises(ValueError, match="loop"):
            StreamingMGCPL(hosts=["127.0.0.1:1"], engine="loop")
        with pytest.raises(ValueError, match="block_rows"):
            StreamingMGCPL(hosts=["127.0.0.1:1"], block_rows=0)

    def test_sharded_batch_error_points_here(self):
        from repro.distributed import ShardedMGCPL

        with pytest.raises(ValueError, match="StreamingMGCPL"):
            ShardedMGCPL(update_mode="online")


# ---------------------------------------------------------------------- #
# Appends and warm refits
# ---------------------------------------------------------------------- #
class TestWarmRefit:
    def test_refit_after_ingest_ships_zero_payload_bytes(
        self, stream_dataset, tcp_hosts
    ):
        rng = np.random.default_rng(9)
        batch1 = rng.integers(0, 3, size=(31, 6)).astype(np.int64)
        batch2 = rng.integers(0, 3, size=(17, 6)).astype(np.int64)
        with StreamingMGCPL(
            hosts=tcp_hosts, block_rows=40, random_state=0
        ) as streaming:
            streaming.fit(stream_dataset)
            executor = streaming.last_executor_
            cold_payload = executor.transport_stats()["payload_bytes_shipped"]
            assert cold_payload > 0

            streaming.ingest(batch1)
            streaming.ingest(batch2)
            stats = executor.transport_stats()
            # Appends travel on their own counter, never the handshake one.
            assert stats["payload_bytes_shipped"] == cold_payload
            assert stats["append_bytes_shipped"] == batch1.nbytes + batch2.nbytes

            streaming.refit()
            stats = executor.transport_stats()
            assert stats["payload_bytes_shipped"] == cold_payload, (
                "warm refit must ship zero shard payload bytes"
            )
            assert streaming.last_executor_ is executor  # still resident

            # The warm refit equals a scratch serial fit on the same rows.
            everything = CategoricalDataset.from_codes(
                np.concatenate([stream_dataset.codes, batch1, batch2]),
                n_categories=stream_dataset.n_categories,
            )
            reference = MGCPL(update_mode="online", random_state=0).fit(everything)
            np.testing.assert_array_equal(streaming.labels_, reference.labels_)

    def test_appends_route_to_least_loaded_shard(self, stream_dataset, tcp_hosts):
        with StreamingMGCPL(
            hosts=tcp_hosts, block_rows=64, random_state=0
        ) as streaming:
            streaming.fit(stream_dataset)
            executor = streaming.last_executor_
            sizes_before = [idx.size for idx in executor.shard_indices]
            shard_of = executor.append_rows(
                np.zeros((4, 6), dtype=np.int64)
            )
            sizes_after = [idx.size for idx in executor.shard_indices]
            assert sum(sizes_after) == sum(sizes_before) + 4
            # Deterministic: least-loaded first, ties to the lowest index.
            expected = executor.route_rows(0)  # sanity: empty routing works
            assert expected.size == 0
            assert max(sizes_after) - min(sizes_after) <= max(
                1, max(sizes_before) - min(sizes_before)
            )
            assert shard_of.shape == (4,)

    def test_refit_without_fit_raises(self):
        est = StreamingMGCPL(hosts=["127.0.0.1:1"])
        with pytest.raises(RuntimeError, match="resident"):
            est.refit()


# ---------------------------------------------------------------------- #
# Append + SIGKILL recovery: the stream converges to the no-failure state
# ---------------------------------------------------------------------- #
class TestAppendRecovery:
    def test_sigkill_mid_stream_converges_to_no_failure_state(self, stream_dataset):
        procs, addresses = [], []
        try:
            for _ in range(3):
                process, address = spawn_worker_process()
                procs.append(process)
                addresses.append(address)
            rng = np.random.default_rng(21)
            batch1 = rng.integers(0, 3, size=(30, 6)).astype(np.int64)
            batch2 = rng.integers(0, 3, size=(30, 6)).astype(np.int64)
            with StreamingMGCPL(
                hosts=addresses, block_rows=48, random_state=0
            ) as streaming:
                streaming.fit(stream_dataset)
                executor = streaming.last_executor_
                streaming.ingest(batch1)

                # kill -9 one resident worker mid-stream; the next append
                # that touches its shard triggers re-placement, which must
                # replay the rows appended before the crash too.
                victim = int(executor.placement[0])
                procs[victim].kill()
                procs[victim].wait(timeout=10)
                time.sleep(0.2)

                streaming.ingest(batch2)
                assert executor.recovery_events, "the crash went unnoticed"
                streaming.refit()

            everything = CategoricalDataset.from_codes(
                np.concatenate([stream_dataset.codes, batch1, batch2]),
                n_categories=stream_dataset.n_categories,
            )
            reference = MGCPL(update_mode="online", random_state=0).fit(everything)
            np.testing.assert_array_equal(streaming.labels_, reference.labels_)
        finally:
            for process in procs:
                if process.poll() is None:
                    process.kill()
            for process in procs:
                process.wait(timeout=10)


# ---------------------------------------------------------------------- #
# Shard-cache LRU byte budget
# ---------------------------------------------------------------------- #
class TestShardCacheLRU:
    def fill(self, cache, n, rows=16):
        """Put ``n`` distinct entries with strictly increasing mtimes."""
        keys = []
        for i in range(n):
            codes = np.full((rows, 2), i, dtype=np.int64)
            key = shard_content_key(codes, [rows + 1, rows + 1])
            path = cache.put(key, codes, [rows + 1, rows + 1])
            stamp = 1_000_000 + i
            os.utime(path, (stamp, stamp))
            keys.append(key)
        return keys

    def test_parse_byte_size(self):
        assert parse_byte_size(None) is None
        assert parse_byte_size("") is None
        assert parse_byte_size(4096) == 4096
        assert parse_byte_size("512k") == 512 * 1024
        assert parse_byte_size("2m") == 2 * 1024**2
        assert parse_byte_size("1.5g") == int(1.5 * 1024**3)
        with pytest.raises(ValueError, match="malformed"):
            parse_byte_size("lots")
        with pytest.raises(ValueError, match="positive"):
            parse_byte_size("0")
        with pytest.raises(ValueError, match="positive"):
            parse_byte_size(-3)

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ShardCache(tmp_path)
        self.fill(cache, 5)
        assert cache.evictions == 0
        assert len(cache._entries()) == 5

    def test_put_evicts_least_recently_used_first(self, tmp_path):
        cache = ShardCache(tmp_path)
        entry_size = cache.path_for(self.fill(cache, 1)[0]).stat().st_size
        cache = ShardCache(tmp_path, max_bytes=3 * entry_size)
        keys = self.fill(cache, 5)  # re-puts key 0 (touch), adds 4 more
        assert cache.evictions >= 2
        assert cache.total_bytes() <= 3 * entry_size
        # The newest entries survive; the oldest were evicted.
        assert cache.has(keys[-1])
        assert not cache.has(keys[0]) or not cache.has(keys[1])

    def test_get_touch_protects_an_entry(self, tmp_path):
        cache = ShardCache(tmp_path, max_bytes=10**9)
        keys = self.fill(cache, 3)
        entry_size = cache.path_for(keys[0]).stat().st_size
        cache.max_bytes = 3 * entry_size
        assert cache.get(keys[0]) is not None  # oldest becomes most recent
        extra = self.fill(cache, 1, rows=17)  # overflow: one must go
        # key 0 was just used, so key 1 (now the oldest) is the victim.
        assert cache.has(keys[0])
        assert not cache.has(keys[1])
        assert cache.has(extra[0])

    def test_own_put_is_never_evicted_by_itself(self, tmp_path):
        cache = ShardCache(tmp_path, max_bytes=1)  # absurdly small budget
        keys = self.fill(cache, 1)
        assert cache.has(keys[0])  # over budget, but the fresh put survives

    def test_env_var_budget_and_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENV, "64k")
        assert ShardCache(tmp_path).max_bytes == 64 * 1024
        assert ShardCache(tmp_path, max_bytes="1m").max_bytes == 1024**2
        monkeypatch.delenv(CACHE_MAX_ENV)
        assert ShardCache(tmp_path).max_bytes is None

    def test_worker_server_accepts_budget(self, tmp_path):
        server = WorkerServer(
            "127.0.0.1", 0, shard_cache=tmp_path / "cache",
            shard_cache_max_bytes="2m",
        )
        try:
            assert server.shard_cache.max_bytes == 2 * 1024**2
        finally:
            server.shutdown()

    def test_cli_exposes_the_flag(self):
        args = build_parser().parse_args(
            ["worker", "--shard-cache", "/tmp/c", "--shard-cache-max-bytes", "512m"]
        )
        assert args.shard_cache_max_bytes == "512m"


# ---------------------------------------------------------------------- #
# Concept-drift stream generator
# ---------------------------------------------------------------------- #
class TestDriftStream:
    def test_seeded_streams_are_reproducible(self):
        a = make_drift_stream(n_batches=5, batch_rows=40, random_state=7)
        b = make_drift_stream(n_batches=5, batch_rows=40, random_state=7)
        for batch_a, batch_b in zip(a, b):
            np.testing.assert_array_equal(batch_a.codes, batch_b.codes)
            np.testing.assert_array_equal(batch_a.labels, batch_b.labels)
            np.testing.assert_array_equal(batch_a.true_modes, batch_b.true_modes)

    def test_shapes_vocabulary_and_labels(self):
        stream = make_drift_stream(
            n_batches=4, batch_rows=25, n_features=5, n_clusters=3,
            n_categories=4, random_state=0,
        )
        assert len(stream) == 4
        for batch in stream:
            assert batch.codes.shape == (25, 5)
            assert batch.n_categories == [4] * 5
            assert batch.labels.shape == (25,)
            assert set(np.unique(batch.labels)) <= {0, 1, 2}
            assert batch.codes.min() >= 0 and batch.codes.max() < 4
            assert batch.true_modes.shape == (3, 5)

    def test_drift_migrates_modes_and_zero_drift_is_stationary(self):
        drifting = make_drift_stream(
            n_batches=8, batch_rows=20, drift=0.4, random_state=1
        )
        assert any(
            not np.array_equal(drifting[0].true_modes, batch.true_modes)
            for batch in drifting[1:]
        )
        frozen = make_drift_stream(
            n_batches=5, batch_rows=20, drift=0.0, random_state=1
        )
        assert all(
            np.array_equal(frozen[0].true_modes, batch.true_modes)
            for batch in frozen
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_drift_stream(n_categories=1)
        with pytest.raises(ValueError):
            make_drift_stream(drift=1.5)
        with pytest.raises(ValueError):
            make_drift_stream(cluster_weights=[1.0])
