"""The transport-pluggable executor API and the multi-host TCP backend.

The contract under test (ISSUE 4): ``make_executor`` is the single,
registry-driven construction path for shard-executor backends; a
loopback-TCP fit is **bit-identical** (EngineState counts and labels) to the
serial backend on the UCI analogue sets; and every failure mode — refused
connections, workers dying mid-sweep, partial construction — surfaces as a
clear :class:`TransportError` instead of a hang or a leak.

ISSUE 5 added the adversarial half (``TestCodecFuzz``): truncated frames,
oversized length prefixes, malformed npz/JSON bodies and mid-frame
disconnects must fail cleanly — on the worker server, on the serving server
and on the clients — never hang, and never take the server down for the next
session.  The whole file runs under a hard timeout.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.sync import InProcessShardExecutor
from repro.data.uci.registry import load_dataset
from repro.distributed import (
    GranularityAwareScheduler,
    ShardedCAME,
    ShardedMGCPL,
    TransportError,
    available_backends,
    default_n_shards,
    make_executor,
    make_node_pool,
)
from repro.distributed import rpc
from repro.distributed import runtime
from repro.distributed.transport import (
    ShardExecutor,
    get_backend_spec,
    resolve_backend,
)
from repro.engine import make_engine

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def tcp_hosts():
    with rpc.local_worker_pool(2) as hosts:
        yield hosts


# ---------------------------------------------------------------------- #
# The backend registry
# ---------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_shipped_backends_are_registered(self):
        names = available_backends()
        assert {"serial", "process", "tcp"} <= set(names)

    def test_aliases_resolve(self):
        assert resolve_backend("in-process") == "serial"
        assert resolve_backend("TCP") == "tcp"
        assert resolve_backend(" Remote ") == "tcp"

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            resolve_backend("thread")

    def test_unknown_option_names_the_backend(self, small_clusters):
        with pytest.raises(ValueError, match="serial.*does not accept.*hosts"):
            make_executor(
                "serial", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=["127.0.0.1:1"],
            )

    def test_serial_backend_is_the_reference_executor(self, small_clusters):
        executor = make_executor(
            "serial", small_clusters.codes, small_clusters.n_categories, shards=3
        )
        assert isinstance(executor, InProcessShardExecutor)
        assert isinstance(executor, ShardExecutor)  # virtual subclass
        assert executor.n_shards == 3
        executor.close()

    def test_spec_metadata(self):
        spec = get_backend_spec("tcp")
        assert spec.description
        assert "hosts" in spec.options

    def test_tcp_requires_hosts(self, small_clusters):
        with pytest.raises(ValueError, match="repro worker"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories, shards=2
            )


class TestDefaultShards:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_SHARDS", "3")
        assert default_n_shards() == 3
        assert default_n_shards(5) == 5  # explicit request wins

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_SHARDS", "many")
        with pytest.raises(ValueError, match="REPRO_N_SHARDS"):
            default_n_shards()
        monkeypatch.setenv("REPRO_N_SHARDS", "0")
        with pytest.raises(ValueError):
            default_n_shards()

    def test_env_absent_falls_back_to_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_SHARDS", raising=False)
        assert default_n_shards() >= 1


# ---------------------------------------------------------------------- #
# Loopback-TCP equivalence: bit-identical to the serial backend
# ---------------------------------------------------------------------- #
class TestTCPEquivalence:
    @pytest.mark.parametrize("dataset_name", ["Vot", "Bal"])
    def test_mgcpl_fit_bit_identical_to_serial(self, dataset_name, tcp_hosts):
        dataset = load_dataset(dataset_name)
        serial = ShardedMGCPL(n_shards=4, backend="serial", random_state=7).fit(dataset)
        over_tcp = ShardedMGCPL(
            n_shards=4, backend="tcp", hosts=tcp_hosts, random_state=7
        ).fit(dataset)

        np.testing.assert_array_equal(over_tcp.labels_, serial.labels_)
        assert over_tcp.kappa_ == serial.kappa_
        state_serial = serial.assignment_model_.state
        state_tcp = over_tcp.assignment_model_.state
        np.testing.assert_array_equal(state_tcp.packed, state_serial.packed)
        np.testing.assert_array_equal(state_tcp.valid_counts, state_serial.valid_counts)
        np.testing.assert_array_equal(state_tcp.sizes, state_serial.sizes)

    def test_came_fit_bit_identical_to_serial(self, small_clusters, tcp_hosts):
        gamma = ShardedMGCPL(n_shards=2, backend="serial", random_state=3).fit(
            small_clusters
        ).encoding_
        serial = ShardedCAME(n_clusters=3, n_shards=4, backend="serial", random_state=5)
        over_tcp = ShardedCAME(
            n_clusters=3, n_shards=4, backend="tcp", hosts=tcp_hosts, random_state=5
        )
        serial.fit(gamma)
        over_tcp.fit(gamma)
        np.testing.assert_array_equal(over_tcp.labels_, serial.labels_)
        assert over_tcp.objective_ == serial.objective_
        np.testing.assert_array_equal(over_tcp.modes_, serial.modes_)

    def test_executor_level_counts_merge_exactly(self, small_clusters, tcp_hosts):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 5, size=codes.shape[0]).astype(np.int64)
        with make_executor("tcp", codes, cats, shards=3, hosts=tcp_hosts) as executor:
            executor.begin_epoch(5, labels)
            merged = executor.rebuild(labels)
        full = make_engine(codes, cats, 5, labels=labels).snapshot()
        np.testing.assert_array_equal(merged.packed, full.packed)
        np.testing.assert_array_equal(merged.sizes, full.sizes)

    def test_default_shards_follow_hosts(self, small_clusters, tcp_hosts):
        with make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories, hosts=tcp_hosts
        ) as executor:
            assert executor.n_shards == len(tcp_hosts)

    def test_registry_name_pins_tcp_backend(self, tcp_hosts):
        from repro.registry import make_clusterer

        model = make_clusterer("mgcpl@tcp", hosts=tcp_hosts, random_state=0)
        assert isinstance(model, ShardedMGCPL)
        assert model.backend == "tcp"
        assert model.get_params()["hosts"] == list(tcp_hosts)

    def test_once_worker_serves_several_shards_without_deadlock(self, small_clusters):
        """Multiple shards on one --once worker: concurrent sessions, no hang."""
        server = rpc.serve_worker("127.0.0.1:0", once=True)
        model = ShardedMGCPL(
            n_shards=3, backend="tcp", hosts=[server.address], random_state=7
        ).fit(small_clusters)
        reference = ShardedMGCPL(n_shards=3, backend="serial", random_state=7).fit(
            small_clusters
        )
        np.testing.assert_array_equal(model.labels_, reference.labels_)

    def test_backend_host_pairing_validated_at_construction(self, tcp_hosts):
        with pytest.raises(ValueError, match="requires hosts"):
            ShardedMGCPL(backend="tcp")
        with pytest.raises(ValueError, match="does not take hosts"):
            ShardedMGCPL(backend="serial", hosts=list(tcp_hosts))


# ---------------------------------------------------------------------- #
# Placement
# ---------------------------------------------------------------------- #
class TestPlacement:
    def test_scheduler_places_every_shard_on_a_node(self):
        pool = make_node_pool(n_nodes=6, n_profiles=3, random_state=0)
        scheduler = GranularityAwareScheduler(n_groups=3, random_state=0)
        sizes = [400, 300, 200, 100]
        placement = scheduler.place_shards(sizes, pool)
        assert len(placement) == len(sizes)
        assert all(0 <= p < len(pool) for p in placement)
        # deterministic for a fixed seed
        assert placement == scheduler.place_shards(sizes, pool)

    def test_tcp_executor_honours_placement(self, small_clusters, tcp_hosts):
        with make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=2, hosts=tcp_hosts, placement=[1, 1],
        ) as executor:
            assert executor.placement == [1, 1]
            state = executor.begin_epoch(2, None)
            assert state.n_clusters == 2

    def test_bad_placement_rejected(self, small_clusters, tcp_hosts):
        with pytest.raises(ValueError, match="placement"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=tcp_hosts, placement=[0],
            )
        with pytest.raises(ValueError, match="placement"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=tcp_hosts, placement=[0, 7],
            )


# ---------------------------------------------------------------------- #
# Failure paths: TransportError, never a hang or a leak
# ---------------------------------------------------------------------- #
class TestFailurePaths:
    def test_connection_refused_is_a_transport_error(self, small_clusters):
        with pytest.raises(TransportError, match="cannot connect"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=1, hosts=["127.0.0.1:1"],
            )

    def test_partial_tcp_connect_failure_cleans_up(self, small_clusters, tcp_hosts):
        # Shard 0 connects to a live worker, shard 1 to a dead port: the
        # construction must fail *and* close the live connection; the worker
        # stays healthy for the next session.
        with pytest.raises(TransportError):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=[tcp_hosts[0], "127.0.0.1:1"],
            )
        with make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=1, hosts=[tcp_hosts[0]],
        ) as executor:
            assert int(executor.begin_epoch(2, None).sizes.sum()) == 0

    def test_worker_dying_mid_sweep_raises_not_hangs(self, small_clusters):
        """A worker that completes the handshake and then dies -> TransportError."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        address = "127.0.0.1:%d" % listener.getsockname()[1]

        def half_worker():
            conn, _ = listener.accept()
            _, _, arrays = rpc.unpack_message(rpc.recv_frame(conn))
            rpc.send_frame(conn, rpc.pack_message("welcome", {
                "protocol": rpc.PROTOCOL_VERSION,
                "n_objects": int(arrays["codes"].shape[0]),
            }))
            conn.close()  # "dies" right after the handshake

        thread = threading.Thread(target=half_worker, daemon=True)
        thread.start()
        try:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=1, hosts=[address],
            )
            with pytest.raises(TransportError, match="failed mid-operation|connection"):
                executor.begin_epoch(3, None)
            executor.close()  # idempotent even after the failure
            executor.close()
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_remote_exception_reports_worker_traceback(self, small_clusters, tcp_hosts):
        transport = rpc.TCPTransport(
            tcp_hosts[0], small_clusters.codes[:10], list(small_clusters.n_categories)
        )
        try:
            # rebuild before begin_epoch: the shard engine does not exist yet,
            # so the worker raises and must report it back — and keep serving.
            transport.submit("rebuild", (np.zeros(10, dtype=np.int64),))
            with pytest.raises(TransportError, match="worker raised"):
                transport.result()
            transport.submit("ping", ())
            assert transport.result() == 10
        finally:
            transport.close()

    def test_closed_executor_refuses_new_work(self, small_clusters, tcp_hosts):
        executor = make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=2, hosts=tcp_hosts,
        )
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(TransportError, match="closed"):
            executor.begin_epoch(2, None)

    def test_process_pool_partial_construction_cleans_up(self, monkeypatch, tiny_clusters):
        """If a later shard's pool fails to start, earlier pools are shut down."""
        created, closed = [], []
        real = runtime.ProcessTransport
        original_close = real.close

        class Flaky(real):
            def __init__(self, *args, **kwargs):
                if created:
                    raise OSError("no more processes")
                super().__init__(*args, **kwargs)
                created.append(self)

        def tracking_close(self):
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(real, "close", tracking_close)
        monkeypatch.setattr(runtime, "ProcessTransport", Flaky)
        with pytest.raises(OSError, match="no more processes"):
            make_executor(
                "process", tiny_clusters.codes, tiny_clusters.n_categories, shards=2
            )
        assert len(created) == 1
        assert created[0] in closed

    def test_process_shard_cap_enforced_before_spawning(self, small_clusters):
        indices = [np.array([i]) for i in range(small_clusters.n_objects)]
        with pytest.raises(ValueError, match="worker"):
            make_executor(
                "process", small_clusters.codes, small_clusters.n_categories,
                shards=indices,
            )


# ---------------------------------------------------------------------- #
# Codec round trips
# ---------------------------------------------------------------------- #
class TestCodec:
    def test_request_round_trip_sweep(self, small_clusters):
        from repro.core.sync import SweepBroadcast

        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        state = make_engine(codes, cats, 4).snapshot()
        broadcast = SweepBroadcast(
            state=state,
            u=np.linspace(0, 1, 4),
            rho=np.zeros(4),
            omega=np.full((len(cats), 4), 0.25),
            blocked=np.array([False, True, False, False]),
        )
        body = rpc.encode_request("sweep", (broadcast,))
        kind, meta, arrays = rpc.unpack_message(body)
        method, (decoded,) = rpc.decode_request(meta, arrays)
        assert method == "sweep"
        np.testing.assert_array_equal(decoded.u, broadcast.u)
        np.testing.assert_array_equal(decoded.blocked, broadcast.blocked)
        np.testing.assert_array_equal(decoded.omega, broadcast.omega)
        np.testing.assert_array_equal(decoded.state.packed, state.packed)
        assert decoded.state.n_categories == state.n_categories

    def test_result_round_trip_state_and_labels(self, small_clusters):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        state = make_engine(codes, cats, 3).snapshot()
        kind, meta, arrays = rpc.unpack_message(rpc.encode_result(state))
        decoded = rpc.decode_result(kind, meta, arrays)
        np.testing.assert_array_equal(decoded.packed, state.packed)

        labels = np.arange(7, dtype=np.int64)
        kind, meta, arrays = rpc.unpack_message(rpc.encode_result(labels))
        np.testing.assert_array_equal(rpc.decode_result(kind, meta, arrays), labels)

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            rpc.parse_address("localhost")
        with pytest.raises(ValueError, match="port"):
            rpc.parse_address("localhost:http")


# ---------------------------------------------------------------------- #
# Codec fuzzing: adversarial bytes fail cleanly on every server and client
# ---------------------------------------------------------------------- #
class TestCodecFuzz:
    """Hostile frames must raise TransportError / close cleanly — never hang."""

    @pytest.fixture()
    def worker_target(self, small_clusters):
        server = rpc.serve_worker("127.0.0.1:0")

        def healthy():
            transport = rpc.TCPTransport(
                server.address, small_clusters.codes[:20],
                list(small_clusters.n_categories),
            )
            try:
                transport.submit("ping", ())
                assert transport.result() == 20
            finally:
                transport.close()

        yield server.address, healthy
        server.shutdown()

    @pytest.fixture()
    def serving_target(self, tmp_path, small_clusters):
        from repro.persistence import save_model
        from repro.registry import make_clusterer
        from repro.serving import ServingClient, serve_model

        model = make_clusterer(
            "kmodes", n_clusters=3, n_init=1, random_state=0
        ).fit(small_clusters)
        path = tmp_path / "fuzzed.npz"
        save_model(model, path)
        server = serve_model(path)

        def healthy():
            with ServingClient(server.address, connect_timeout=5) as client:
                assert client.info()["service"] == "repro-serving"
                assert client.predict(small_clusters.codes[:5]).shape == (5,)

        yield server.address, healthy
        assert server.stop(timeout=10)

    @pytest.fixture(params=["worker", "serving"])
    def target(self, request):
        """(address, health-check) for each long-lived server flavour."""
        return request.getfixturevalue(f"{request.param}_target")

    @staticmethod
    def _connect(address: str) -> socket.socket:
        host, port = rpc.parse_address(address)
        sock = socket.create_connection((host, port), timeout=5)
        sock.settimeout(5)
        return sock

    @staticmethod
    def _server_closed(sock: socket.socket) -> bool:
        """Read until EOF; socket.timeout here would mean the server hung."""
        while True:
            data = sock.recv(1 << 16)
            if not data:
                return True

    # -- unit level: unpack_message rejects garbage as TransportError ------ #
    def test_unpack_rejects_malformed_bodies(self):
        import io

        from repro.distributed.codec import unpack_message

        with pytest.raises(TransportError, match="malformed frame"):
            unpack_message(b"")  # empty body
        with pytest.raises(TransportError, match="malformed frame"):
            unpack_message(b"not an npz archive at all")
        # a well-formed npz archive missing the __meta__ entry
        buffer = io.BytesIO()
        np.savez(buffer, data=np.arange(3))
        with pytest.raises(TransportError, match="malformed frame"):
            unpack_message(buffer.getvalue())
        # __meta__ present but not JSON
        buffer = io.BytesIO()
        np.savez(buffer, __meta__=np.asarray("{this is not json"))
        with pytest.raises(TransportError, match="malformed frame"):
            unpack_message(buffer.getvalue())
        # valid JSON object without a kind
        buffer = io.BytesIO()
        np.savez(buffer, __meta__=np.asarray('{"protocol": 1}'))
        with pytest.raises(TransportError, match="malformed frame"):
            unpack_message(buffer.getvalue())

    # -- server side ------------------------------------------------------- #
    def test_truncated_frame_then_disconnect(self, target):
        address, healthy = target
        sock = self._connect(address)
        try:
            # promise 64 bytes, deliver 16, vanish: the server must treat the
            # mid-frame EOF as a dead peer and close the session
            sock.sendall(struct.pack(">Q", 64) + b"x" * 16)
        finally:
            sock.close()
        healthy()

    def test_oversized_length_prefix_is_refused(self, target):
        address, healthy = target
        sock = self._connect(address)
        try:
            # a corrupt prefix promising 1 TiB must be rejected before any
            # allocation, closing the connection — not honoured, not hung on
            sock.sendall(struct.pack(">Q", 1 << 40))
            assert self._server_closed(sock)
        finally:
            sock.close()
        healthy()

    def test_malformed_frame_body_closes_session(self, target):
        address, healthy = target
        body = b"\x00garbage that is not an npz archive\xff" * 4
        sock = self._connect(address)
        try:
            sock.sendall(struct.pack(">Q", len(body)) + body)
            assert self._server_closed(sock)
        finally:
            sock.close()
        healthy()

    def test_garbage_after_valid_serving_handshake(self, serving_target):
        from repro.serving.protocol import hello_body

        address, healthy = serving_target
        sock = self._connect(address)
        try:
            rpc.send_frame(sock, hello_body())
            kind, _, _ = rpc.unpack_message(rpc.recv_frame(sock))
            assert kind == "welcome"
            # now turn hostile mid-session
            sock.sendall(struct.pack(">Q", 32) + b"Z" * 32)
            assert self._server_closed(sock)
        finally:
            sock.close()
        healthy()

    # -- client side ------------------------------------------------------- #
    def test_client_mid_frame_disconnect_raises(self, small_clusters):
        """A fake server that dies mid-frame -> TransportError on the client."""
        from repro.serving import ServingClient

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        address = "127.0.0.1:%d" % listener.getsockname()[1]

        def half_server():
            conn, _ = listener.accept()
            rpc.recv_frame(conn)  # swallow the hello
            conn.sendall(struct.pack(">Q", 1 << 16) + b"partial")
            conn.close()

        thread = threading.Thread(target=half_server, daemon=True)
        thread.start()
        try:
            with pytest.raises(TransportError):
                ServingClient(address, connect_timeout=5).connect()
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_client_rejects_garbage_welcome(self):
        from repro.serving import ServingClient

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        address = "127.0.0.1:%d" % listener.getsockname()[1]

        def garbage_server():
            conn, _ = listener.accept()
            rpc.recv_frame(conn)
            body = b"ceci n'est pas une npz"
            conn.sendall(struct.pack(">Q", len(body)) + body)
            conn.close()

        thread = threading.Thread(target=garbage_server, daemon=True)
        thread.start()
        try:
            with pytest.raises(TransportError, match="malformed frame"):
                ServingClient(address, connect_timeout=5).connect()
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_frame_cap_enforced_on_send(self, monkeypatch):
        from repro.distributed import codec

        monkeypatch.setattr(codec, "MAX_FRAME", 128)
        left, right = socket.socketpair()
        try:
            with pytest.raises(TransportError, match="exceeds the 128"):
                codec.send_frame(left, b"x" * 129)
        finally:
            left.close()
            right.close()
