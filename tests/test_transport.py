"""The transport-pluggable executor API and the multi-host TCP backend.

The contract under test (ISSUE 4): ``make_executor`` is the single,
registry-driven construction path for shard-executor backends; a
loopback-TCP fit is **bit-identical** (EngineState counts and labels) to the
serial backend on the UCI analogue sets; and every failure mode — refused
connections, workers dying mid-sweep, partial construction — surfaces as a
clear :class:`TransportError` instead of a hang or a leak.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.core.sync import InProcessShardExecutor
from repro.data.uci.registry import load_dataset
from repro.distributed import (
    GranularityAwareScheduler,
    ShardedCAME,
    ShardedMGCPL,
    TransportError,
    available_backends,
    default_n_shards,
    make_executor,
    make_node_pool,
)
from repro.distributed import rpc
from repro.distributed import runtime
from repro.distributed.transport import (
    ShardExecutor,
    get_backend_spec,
    resolve_backend,
)
from repro.engine import make_engine


@pytest.fixture(scope="module")
def tcp_hosts():
    with rpc.local_worker_pool(2) as hosts:
        yield hosts


# ---------------------------------------------------------------------- #
# The backend registry
# ---------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_shipped_backends_are_registered(self):
        names = available_backends()
        assert {"serial", "process", "tcp"} <= set(names)

    def test_aliases_resolve(self):
        assert resolve_backend("in-process") == "serial"
        assert resolve_backend("TCP") == "tcp"
        assert resolve_backend(" Remote ") == "tcp"

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            resolve_backend("thread")

    def test_unknown_option_names_the_backend(self, small_clusters):
        with pytest.raises(ValueError, match="serial.*does not accept.*hosts"):
            make_executor(
                "serial", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=["127.0.0.1:1"],
            )

    def test_serial_backend_is_the_reference_executor(self, small_clusters):
        executor = make_executor(
            "serial", small_clusters.codes, small_clusters.n_categories, shards=3
        )
        assert isinstance(executor, InProcessShardExecutor)
        assert isinstance(executor, ShardExecutor)  # virtual subclass
        assert executor.n_shards == 3
        executor.close()

    def test_spec_metadata(self):
        spec = get_backend_spec("tcp")
        assert spec.description
        assert "hosts" in spec.options

    def test_tcp_requires_hosts(self, small_clusters):
        with pytest.raises(ValueError, match="repro worker"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories, shards=2
            )


class TestDefaultShards:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_SHARDS", "3")
        assert default_n_shards() == 3
        assert default_n_shards(5) == 5  # explicit request wins

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_SHARDS", "many")
        with pytest.raises(ValueError, match="REPRO_N_SHARDS"):
            default_n_shards()
        monkeypatch.setenv("REPRO_N_SHARDS", "0")
        with pytest.raises(ValueError):
            default_n_shards()

    def test_env_absent_falls_back_to_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_SHARDS", raising=False)
        assert default_n_shards() >= 1


# ---------------------------------------------------------------------- #
# Loopback-TCP equivalence: bit-identical to the serial backend
# ---------------------------------------------------------------------- #
class TestTCPEquivalence:
    @pytest.mark.parametrize("dataset_name", ["Vot", "Bal"])
    def test_mgcpl_fit_bit_identical_to_serial(self, dataset_name, tcp_hosts):
        dataset = load_dataset(dataset_name)
        serial = ShardedMGCPL(n_shards=4, backend="serial", random_state=7).fit(dataset)
        over_tcp = ShardedMGCPL(
            n_shards=4, backend="tcp", hosts=tcp_hosts, random_state=7
        ).fit(dataset)

        np.testing.assert_array_equal(over_tcp.labels_, serial.labels_)
        assert over_tcp.kappa_ == serial.kappa_
        state_serial = serial.assignment_model_.state
        state_tcp = over_tcp.assignment_model_.state
        np.testing.assert_array_equal(state_tcp.packed, state_serial.packed)
        np.testing.assert_array_equal(state_tcp.valid_counts, state_serial.valid_counts)
        np.testing.assert_array_equal(state_tcp.sizes, state_serial.sizes)

    def test_came_fit_bit_identical_to_serial(self, small_clusters, tcp_hosts):
        gamma = ShardedMGCPL(n_shards=2, backend="serial", random_state=3).fit(
            small_clusters
        ).encoding_
        serial = ShardedCAME(n_clusters=3, n_shards=4, backend="serial", random_state=5)
        over_tcp = ShardedCAME(
            n_clusters=3, n_shards=4, backend="tcp", hosts=tcp_hosts, random_state=5
        )
        serial.fit(gamma)
        over_tcp.fit(gamma)
        np.testing.assert_array_equal(over_tcp.labels_, serial.labels_)
        assert over_tcp.objective_ == serial.objective_
        np.testing.assert_array_equal(over_tcp.modes_, serial.modes_)

    def test_executor_level_counts_merge_exactly(self, small_clusters, tcp_hosts):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 5, size=codes.shape[0]).astype(np.int64)
        with make_executor("tcp", codes, cats, shards=3, hosts=tcp_hosts) as executor:
            executor.begin_epoch(5, labels)
            merged = executor.rebuild(labels)
        full = make_engine(codes, cats, 5, labels=labels).snapshot()
        np.testing.assert_array_equal(merged.packed, full.packed)
        np.testing.assert_array_equal(merged.sizes, full.sizes)

    def test_default_shards_follow_hosts(self, small_clusters, tcp_hosts):
        with make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories, hosts=tcp_hosts
        ) as executor:
            assert executor.n_shards == len(tcp_hosts)

    def test_registry_name_pins_tcp_backend(self, tcp_hosts):
        from repro.registry import make_clusterer

        model = make_clusterer("mgcpl@tcp", hosts=tcp_hosts, random_state=0)
        assert isinstance(model, ShardedMGCPL)
        assert model.backend == "tcp"
        assert model.get_params()["hosts"] == list(tcp_hosts)

    def test_once_worker_serves_several_shards_without_deadlock(self, small_clusters):
        """Multiple shards on one --once worker: concurrent sessions, no hang."""
        server = rpc.serve_worker("127.0.0.1:0", once=True)
        model = ShardedMGCPL(
            n_shards=3, backend="tcp", hosts=[server.address], random_state=7
        ).fit(small_clusters)
        reference = ShardedMGCPL(n_shards=3, backend="serial", random_state=7).fit(
            small_clusters
        )
        np.testing.assert_array_equal(model.labels_, reference.labels_)

    def test_backend_host_pairing_validated_at_construction(self, tcp_hosts):
        with pytest.raises(ValueError, match="requires hosts"):
            ShardedMGCPL(backend="tcp")
        with pytest.raises(ValueError, match="does not take hosts"):
            ShardedMGCPL(backend="serial", hosts=list(tcp_hosts))


# ---------------------------------------------------------------------- #
# Placement
# ---------------------------------------------------------------------- #
class TestPlacement:
    def test_scheduler_places_every_shard_on_a_node(self):
        pool = make_node_pool(n_nodes=6, n_profiles=3, random_state=0)
        scheduler = GranularityAwareScheduler(n_groups=3, random_state=0)
        sizes = [400, 300, 200, 100]
        placement = scheduler.place_shards(sizes, pool)
        assert len(placement) == len(sizes)
        assert all(0 <= p < len(pool) for p in placement)
        # deterministic for a fixed seed
        assert placement == scheduler.place_shards(sizes, pool)

    def test_tcp_executor_honours_placement(self, small_clusters, tcp_hosts):
        with make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=2, hosts=tcp_hosts, placement=[1, 1],
        ) as executor:
            assert executor.placement == [1, 1]
            state = executor.begin_epoch(2, None)
            assert state.n_clusters == 2

    def test_bad_placement_rejected(self, small_clusters, tcp_hosts):
        with pytest.raises(ValueError, match="placement"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=tcp_hosts, placement=[0],
            )
        with pytest.raises(ValueError, match="placement"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=tcp_hosts, placement=[0, 7],
            )


# ---------------------------------------------------------------------- #
# Failure paths: TransportError, never a hang or a leak
# ---------------------------------------------------------------------- #
class TestFailurePaths:
    def test_connection_refused_is_a_transport_error(self, small_clusters):
        with pytest.raises(TransportError, match="cannot connect"):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=1, hosts=["127.0.0.1:1"],
            )

    def test_partial_tcp_connect_failure_cleans_up(self, small_clusters, tcp_hosts):
        # Shard 0 connects to a live worker, shard 1 to a dead port: the
        # construction must fail *and* close the live connection; the worker
        # stays healthy for the next session.
        with pytest.raises(TransportError):
            make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=2, hosts=[tcp_hosts[0], "127.0.0.1:1"],
            )
        with make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=1, hosts=[tcp_hosts[0]],
        ) as executor:
            assert int(executor.begin_epoch(2, None).sizes.sum()) == 0

    def test_worker_dying_mid_sweep_raises_not_hangs(self, small_clusters):
        """A worker that completes the handshake and then dies -> TransportError."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        address = "127.0.0.1:%d" % listener.getsockname()[1]

        def half_worker():
            conn, _ = listener.accept()
            _, _, arrays = rpc.unpack_message(rpc.recv_frame(conn))
            rpc.send_frame(conn, rpc.pack_message("welcome", {
                "protocol": rpc.PROTOCOL_VERSION,
                "n_objects": int(arrays["codes"].shape[0]),
            }))
            conn.close()  # "dies" right after the handshake

        thread = threading.Thread(target=half_worker, daemon=True)
        thread.start()
        try:
            executor = make_executor(
                "tcp", small_clusters.codes, small_clusters.n_categories,
                shards=1, hosts=[address],
            )
            with pytest.raises(TransportError, match="failed mid-operation|connection"):
                executor.begin_epoch(3, None)
            executor.close()  # idempotent even after the failure
            executor.close()
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_remote_exception_reports_worker_traceback(self, small_clusters, tcp_hosts):
        transport = rpc.TCPTransport(
            tcp_hosts[0], small_clusters.codes[:10], list(small_clusters.n_categories)
        )
        try:
            # rebuild before begin_epoch: the shard engine does not exist yet,
            # so the worker raises and must report it back — and keep serving.
            transport.submit("rebuild", (np.zeros(10, dtype=np.int64),))
            with pytest.raises(TransportError, match="worker raised"):
                transport.result()
            transport.submit("ping", ())
            assert transport.result() == 10
        finally:
            transport.close()

    def test_closed_executor_refuses_new_work(self, small_clusters, tcp_hosts):
        executor = make_executor(
            "tcp", small_clusters.codes, small_clusters.n_categories,
            shards=2, hosts=tcp_hosts,
        )
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(TransportError, match="closed"):
            executor.begin_epoch(2, None)

    def test_process_pool_partial_construction_cleans_up(self, monkeypatch, tiny_clusters):
        """If a later shard's pool fails to start, earlier pools are shut down."""
        created, closed = [], []
        real = runtime.ProcessTransport
        original_close = real.close

        class Flaky(real):
            def __init__(self, *args, **kwargs):
                if created:
                    raise OSError("no more processes")
                super().__init__(*args, **kwargs)
                created.append(self)

        def tracking_close(self):
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(real, "close", tracking_close)
        monkeypatch.setattr(runtime, "ProcessTransport", Flaky)
        with pytest.raises(OSError, match="no more processes"):
            make_executor(
                "process", tiny_clusters.codes, tiny_clusters.n_categories, shards=2
            )
        assert len(created) == 1
        assert created[0] in closed

    def test_process_shard_cap_enforced_before_spawning(self, small_clusters):
        indices = [np.array([i]) for i in range(small_clusters.n_objects)]
        with pytest.raises(ValueError, match="worker"):
            make_executor(
                "process", small_clusters.codes, small_clusters.n_categories,
                shards=indices,
            )


# ---------------------------------------------------------------------- #
# Codec round trips
# ---------------------------------------------------------------------- #
class TestCodec:
    def test_request_round_trip_sweep(self, small_clusters):
        from repro.core.sync import SweepBroadcast

        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        state = make_engine(codes, cats, 4).snapshot()
        broadcast = SweepBroadcast(
            state=state,
            u=np.linspace(0, 1, 4),
            rho=np.zeros(4),
            omega=np.full((len(cats), 4), 0.25),
            blocked=np.array([False, True, False, False]),
        )
        body = rpc.encode_request("sweep", (broadcast,))
        kind, meta, arrays = rpc.unpack_message(body)
        method, (decoded,) = rpc.decode_request(meta, arrays)
        assert method == "sweep"
        np.testing.assert_array_equal(decoded.u, broadcast.u)
        np.testing.assert_array_equal(decoded.blocked, broadcast.blocked)
        np.testing.assert_array_equal(decoded.omega, broadcast.omega)
        np.testing.assert_array_equal(decoded.state.packed, state.packed)
        assert decoded.state.n_categories == state.n_categories

    def test_result_round_trip_state_and_labels(self, small_clusters):
        codes, cats = small_clusters.codes, list(small_clusters.n_categories)
        state = make_engine(codes, cats, 3).snapshot()
        kind, meta, arrays = rpc.unpack_message(rpc.encode_result(state))
        decoded = rpc.decode_result(kind, meta, arrays)
        np.testing.assert_array_equal(decoded.packed, state.packed)

        labels = np.arange(7, dtype=np.int64)
        kind, meta, arrays = rpc.unpack_message(rpc.encode_result(labels))
        np.testing.assert_array_equal(rpc.decode_result(kind, meta, arrays), labels)

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            rpc.parse_address("localhost")
        with pytest.raises(ValueError, match="port"):
            rpc.parse_address("localhost:http")
