"""Unit tests for repro.utils (rng, validation, timing, logging)."""

import logging
import time

import numpy as np
import pytest

from repro.utils.log import enable_verbose_logging, get_logger
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_array_2d,
    check_feature_names,
    check_labels,
    check_positive_int,
    check_probability,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 5)
        b = ensure_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.integers(0, 1000, 10), b.integers(0, 1000, 10))

    def test_reproducible(self):
        first = [g.integers(0, 100) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 100) for g in spawn_rngs(7, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestCheckArray2d:
    def test_passthrough(self):
        out = check_array_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_1d_promoted_to_column(self):
        assert check_array_2d([1, 2, 3]).shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            check_array_2d(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_array_2d(np.zeros((0, 3)))

    def test_empty_allowed_when_requested(self):
        assert check_array_2d(np.zeros((0, 3)), allow_empty=True).shape == (0, 3)

    def test_dtype_cast(self):
        out = check_array_2d([[1.0, 2.0]], dtype=np.int64)
        assert out.dtype == np.int64


class TestCheckLabels:
    def test_basic(self):
        out = check_labels([0, 1, 1, 0])
        assert out.dtype == np.int64

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_labels([0, 1], n=3)

    def test_float_integral_ok(self):
        assert check_labels([0.0, 1.0]).dtype == np.int64

    def test_float_fractional_rejected(self):
        with pytest.raises(ValueError):
            check_labels([0.5, 1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            check_labels([[0, 1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_labels([])


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3, "x") == 3

    def test_below_minimum(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")


class TestCheckProbability:
    def test_valid(self):
        assert check_probability(0.5, "p") == 0.5

    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_non_numeric(self):
        with pytest.raises(TypeError):
            check_probability("a", "p")


class TestCheckFeatureNames:
    def test_defaults_generated(self):
        assert check_feature_names(None, 3) == ["F0", "F1", "F2"]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_feature_names(["a"], 2)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            check_feature_names(["a", "a"], 2)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.lap("a"):
            time.sleep(0.001)
        with sw.lap("a"):
            pass
        assert sw.total() > 0
        assert set(sw.by_name()) == {"a"}

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"

    def test_enable_verbose_idempotent(self):
        enable_verbose_logging()
        enable_verbose_logging()
        handlers = logging.getLogger("repro").handlers
        assert len([h for h in handlers if isinstance(h, logging.StreamHandler)]) == 1
