"""Durable serving ingest: the write-ahead log and its recovery contract.

The contract under test (ISSUE 10): with ``wal=True`` every acked ingest is
appended to ``<snapshot_path>.wal`` *before* it is applied, so a server
killed between snapshots — with a real ``SIGKILL``, not a polite drain —
recovers by replay to an ``EngineState`` **bit-identical** to everything it
acknowledged.  A torn final record (the append the crash interrupted) is
discarded by CRC; records already contained in the loaded snapshot are
skipped by their recorded object counts; a successful snapshot rotates the
log so it stays bounded; ``reload`` truncates it.  Also covered: the two
PR 10 bugfixes — a post-apply snapshot failure must still ack the ingest
(reported out-of-band via ``snapshot_failures``), and ``snapshot_interval=0``
must be rejected instead of silently coerced to "disabled".
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.data.uci.registry import load_dataset
from repro.distributed.codec import (
    pack_message,
    read_wal_records,
    wal_record,
)
from repro.distributed.transport import TransportError
from repro.persistence import load_model, save_model
from repro.registry import make_clusterer
from repro.serving import ModelServer, ServingClient, WriteAheadLog, route_serving

pytestmark = pytest.mark.timeout(120)


# ---------------------------------------------------------------------- #
# Fixtures & helpers
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def vot():
    return load_dataset("Vot")


@pytest.fixture(scope="module")
def vot_model(vot):
    return make_clusterer(
        "kmodes", n_clusters=2, n_init=1, random_state=0
    ).fit(vot.codes[:120])


@pytest.fixture()
def model_file(vot_model, tmp_path):
    path = tmp_path / "model.npz"
    save_model(vot_model, path)
    return path


def batches(vot, *slices):
    return [vot.codes[a:b] for a, b in slices]


#: Three disjoint ingest batches past the fitted prefix.
BATCH_SLICES = [(120, 150), (150, 190), (190, 232)]


def state_arrays(model):
    state = model.assignment_model_.state
    return (
        np.asarray(state.packed),
        np.asarray(state.valid_counts),
        np.asarray(state.sizes),
    )


def assert_states_identical(recovered, reference):
    for got, want in zip(state_arrays(recovered), state_arrays(reference)):
        np.testing.assert_array_equal(got, want)
    np.testing.assert_array_equal(recovered.labels_, reference.labels_)


def reference_fed(model_file, batch_list):
    """An in-process model fed exactly ``batch_list`` through plain ingest."""
    model = load_model(model_file)
    for batch in batch_list:
        model.ingest(batch)
    return model


def wal_body(seq, base_n, codes, labels):
    return pack_message(
        "wal", {"seq": seq, "base_n": int(base_n)},
        codes=np.asarray(codes, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
    )


# ---------------------------------------------------------------------- #
# Record framing (codec helpers)
# ---------------------------------------------------------------------- #
class TestWalRecordFraming:
    def test_round_trip_multiple_records(self):
        bodies = [b"first", b"second record", b"x" * 1000]
        data = b"".join(wal_record(b) for b in bodies)
        got, clean = read_wal_records(data)
        assert got == bodies
        assert clean == len(data)

    def test_empty_input(self):
        assert read_wal_records(b"") == ([], 0)

    def test_torn_tail_dropped_earlier_records_kept(self):
        intact = wal_record(b"intact-one") + wal_record(b"intact-two")
        torn = wal_record(b"torn-by-the-crash")[:-5]
        got, clean = read_wal_records(intact + torn)
        assert got == [b"intact-one", b"intact-two"]
        assert clean == len(intact)

    def test_truncated_header_is_a_torn_tail(self):
        intact = wal_record(b"ok")
        got, clean = read_wal_records(intact + b"\x00\x01\x02")
        assert got == [b"ok"]
        assert clean == len(intact)

    def test_crc_mismatch_stops_the_scan(self):
        first = wal_record(b"good")
        second = bytearray(wal_record(b"flipped"))
        second[-1] ^= 0xFF  # corrupt the body, not the header
        third = wal_record(b"unreachable")
        got, clean = read_wal_records(first + bytes(second) + third)
        assert got == [b"good"]
        assert clean == len(first)

    def test_corrupt_length_prefix_stops_the_scan(self):
        first = wal_record(b"good")
        huge = (2**62).to_bytes(8, "big") + b"\x00" * 20
        got, clean = read_wal_records(first + huge)
        assert got == [b"good"]
        assert clean == len(first)

    def test_oversized_body_rejected_at_append(self):
        with pytest.raises(TransportError, match="exceeds"):
            wal_record(b"x" * 100, max_record=50)

    def test_cap_enforced_symmetrically_at_read(self):
        record = wal_record(b"y" * 100)
        got, clean = read_wal_records(record, max_record=50)
        assert got == [] and clean == 0


class TestWriteAheadLogFile:
    def test_append_read_counters(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal", sync="always")
        wal.append(b"alpha")
        wal.append(b"beta-longer")
        assert wal.records == 2
        bodies, clean, torn = WriteAheadLog.read(tmp_path / "log.wal")
        assert bodies == [b"alpha", b"beta-longer"]
        assert clean == wal.size_bytes and torn == 0
        wal.close()

    def test_missing_file_reads_empty(self, tmp_path):
        assert WriteAheadLog.read(tmp_path / "nope.wal") == ([], 0, 0)

    def test_rotate_empties_the_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal", sync="batch")
        wal.append(b"doomed")
        wal.rotate()
        assert wal.records == 0 and wal.size_bytes == 0
        assert (tmp_path / "log.wal").stat().st_size == 0
        wal.append(b"fresh")
        assert WriteAheadLog.read(tmp_path / "log.wal")[0] == [b"fresh"]
        wal.close()

    def test_truncate_to_discards_a_torn_tail(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(wal_record(b"keep") + wal_record(b"torn")[:-2])
        bodies, clean, torn = WriteAheadLog.read(path)
        assert bodies == [b"keep"] and torn > 0
        wal = WriteAheadLog(path, sync="batch")
        wal.truncate_to(clean)
        wal.append(b"next")
        assert WriteAheadLog.read(path)[0] == [b"keep", b"next"]
        wal.close()

    def test_invalid_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="wal_sync"):
            WriteAheadLog(tmp_path / "log.wal", sync="sometimes")


# ---------------------------------------------------------------------- #
# WAL-logged ingest is exact (assign + replay_ingest == ingest)
# ---------------------------------------------------------------------- #
class TestWalIngestExactness:
    @pytest.mark.parametrize("wal_sync", ["always", "batch", "none"])
    def test_acked_labels_and_state_match_plain_ingest(
        self, vot, model_file, wal_sync
    ):
        server = ModelServer(model_file, wal=True, wal_sync=wal_sync).start()
        try:
            reference = load_model(model_file)
            with ServingClient(server.address) as client:
                for batch in batches(vot, *BATCH_SLICES):
                    np.testing.assert_array_equal(
                        client.ingest(batch), reference.ingest(batch)
                    )
            assert_states_identical(server.model, reference)
            info = server.info()
            assert info["wal"] is True
            assert info["wal_sync"] == wal_sync
            assert info["wal_records"] == len(BATCH_SLICES)
            assert info["wal_bytes"] == server.wal_path.stat().st_size or (
                wal_sync == "none"  # buffered: file may lag the counter
            )
        finally:
            assert server.stop(timeout=10)


# ---------------------------------------------------------------------- #
# Crash-recovery matrix: real SIGKILL on a subprocess server
# ---------------------------------------------------------------------- #
CRASH_DRIVER = textwrap.dedent("""
    import os, signal, sys, time

    from repro.serving.server import ModelServer, WriteAheadLog

    crash_point = os.environ.get("WAL_CRASH_POINT", "")
    crash_batch = int(os.environ.get("WAL_CRASH_BATCH", "0"))
    model_path, wal_sync = sys.argv[1], sys.argv[2]

    if crash_point:
        original = WriteAheadLog.append
        seen = {"n": 0}

        def crashing(self, body):
            seen["n"] += 1
            if crash_point == "before_append" and seen["n"] == crash_batch:
                os.kill(os.getpid(), signal.SIGKILL)
            original(self, body)
            if crash_point == "after_append" and seen["n"] == crash_batch:
                os.kill(os.getpid(), signal.SIGKILL)

        WriteAheadLog.append = crashing

    server = ModelServer(model_path, wal=True, wal_sync=wal_sync).start()
    print(f"listening on {server.address}", flush=True)
    while True:
        time.sleep(0.5)
""")


def spawn_crashing_server(tmp_path, model_file, wal_sync, crash_point="",
                          crash_batch=0):
    """A subprocess WAL server armed to SIGKILL itself mid-append."""
    driver = tmp_path / "crash_driver.py"
    driver.write_text(CRASH_DRIVER)
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    if crash_point:
        env["WAL_CRASH_POINT"] = crash_point
        env["WAL_CRASH_BATCH"] = str(crash_batch)
    process = subprocess.Popen(
        [sys.executable, str(driver), str(model_file), wal_sync],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    if not match:  # pragma: no cover - diagnostics for a broken spawn
        process.kill()
        raise RuntimeError(f"server printed {line!r} instead of its address")
    return process, match.group(1)


class TestCrashRecoveryMatrix:
    def recover(self, model_file, wal_sync="always"):
        """Restart on the same paths; returns the recovered server (unbound)."""
        return ModelServer(model_file, wal=True, wal_sync=wal_sync)

    def test_sigkill_before_append_loses_only_the_unacked_batch(
        self, vot, model_file, tmp_path
    ):
        b1, b2, b3 = batches(vot, *BATCH_SLICES)
        process, address = spawn_crashing_server(
            tmp_path, model_file, "always", crash_point="before_append",
            crash_batch=3,
        )
        try:
            with ServingClient(address) as client:
                client.ingest(b1)
                client.ingest(b2)
                with pytest.raises(TransportError):
                    client.ingest(b3)  # the server died before logging it
            assert process.wait(timeout=30) == -signal.SIGKILL
        finally:
            process.kill()
            process.wait(timeout=30)
        recovered = self.recover(model_file)
        assert recovered.wal_replayed_batches == 2
        assert_states_identical(
            recovered.model, reference_fed(model_file, [b1, b2])
        )

    def test_sigkill_after_append_before_apply_replays_the_durable_record(
        self, vot, model_file, tmp_path
    ):
        # wal_sync="batch" (flush to the OS, no fsync) on purpose: an OS
        # page-cache write survives a process SIGKILL, which is exactly the
        # "batch" durability claim in the module docs.
        b1, b2 = batches(vot, *BATCH_SLICES[:2])
        process, address = spawn_crashing_server(
            tmp_path, model_file, "batch", crash_point="after_append",
            crash_batch=2,
        )
        try:
            with ServingClient(address) as client:
                client.ingest(b1)
                with pytest.raises(TransportError):
                    client.ingest(b2)  # logged, then killed before the ack
            assert process.wait(timeout=30) == -signal.SIGKILL
        finally:
            process.kill()
            process.wait(timeout=30)
        # The append completed before the kill, so the record is durable and
        # recovery replays it: acked-plus-the-logged-tail, never less than
        # everything acked.
        recovered = self.recover(model_file, wal_sync="batch")
        assert recovered.wal_replayed_batches == 2
        assert_states_identical(
            recovered.model, reference_fed(model_file, [b1, b2])
        )

    def test_sigkill_between_ack_and_snapshot_recovers_everything_acked(
        self, vot, model_file, tmp_path
    ):
        """The headline contract, end to end through the real CLI."""
        all_batches = batches(vot, *BATCH_SLICES)
        snap = tmp_path / "snap.npz"
        cmd = [sys.executable, "-m", "repro", "serve", str(model_file),
               "--listen", "127.0.0.1:0", "--snapshot-path", str(snap),
               "--wal", "--wal-sync", "batch", "--no-warmup"]
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                        env.get("PYTHONPATH")) if p
        )

        def spawn():
            process = subprocess.Popen(
                cmd, stdout=subprocess.PIPE, text=True, env=env
            )
            banner, address = [], None
            for line in process.stdout:
                banner.append(line)
                match = re.search(r"listening on (\S+)", line)
                if match:
                    address = match.group(1)
                    break
            if address is None:  # pragma: no cover
                process.kill()
                raise RuntimeError(f"no address in {banner!r}")
            return process, address, "".join(banner)

        process, address, banner = spawn()
        try:
            assert f"write-ahead log -> {snap}.wal" in banner
            with ServingClient(address) as client:
                for batch in all_batches:
                    client.ingest(batch)  # every ack lands before the kill
        finally:
            process.kill()  # SIGKILL: no drain, no farewell snapshot
            process.wait(timeout=30)

        # Restart on the very same command line; it must announce the replay
        # and serve a state bit-identical to the acked ingests.
        process, address, banner = spawn()
        try:
            assert "wal replay: recovered 3 acked ingest batches" in banner
            with ServingClient(address) as client:
                info = client.info()
                assert info["wal_replayed_batches"] == 3
                assert client.snapshot() == snap
        finally:
            process.kill()
            process.wait(timeout=30)
        assert_states_identical(
            load_model(snap), reference_fed(model_file, all_batches)
        )


# ---------------------------------------------------------------------- #
# Replay unit behaviour: torn tails, stale records, mismatched pairs
# ---------------------------------------------------------------------- #
class TestReplayEdgeCases:
    def test_torn_final_record_dropped_earlier_ones_replayed(
        self, vot, model_file, tmp_path
    ):
        b1, b2 = batches(vot, *BATCH_SLICES[:2])
        reference = load_model(model_file)
        body1 = wal_body(1, reference.labels_.shape[0],
                         b1, reference.ingest(b1))
        body2 = wal_body(2, reference.labels_.shape[0],
                         b2, reference.assignment_model_.assign(b2))
        wal_path = model_file.with_name(model_file.name + ".wal")
        wal_path.write_bytes(
            wal_record(body1) + wal_record(body2)[:-7]  # crash mid-append
        )
        server = ModelServer(model_file, wal=True)
        assert server.wal_replayed_batches == 1
        assert_states_identical(server.model, reference_fed(model_file, [b1]))
        # The torn tail is truncated away so new appends extend a clean log.
        assert wal_path.stat().st_size == len(wal_record(body1))

    def test_stale_records_skipped_after_snapshot_rotate_crash_window(
        self, vot, model_file, tmp_path
    ):
        # Simulate a crash between the snapshot's os.replace and the WAL
        # rotation: the snapshot already contains the logged batches, and
        # replay must skip them (base_n below the snapshot's object count)
        # instead of double-applying.
        b1, b2 = batches(vot, *BATCH_SLICES[:2])
        snap = tmp_path / "snap.npz"
        server = ModelServer(model_file, snapshot_path=snap, wal=True).start()
        try:
            with ServingClient(server.address) as client:
                client.ingest(b1)
                client.ingest(b2)
            wal_path = server.wal_path
            stale = wal_path.read_bytes()
            with ServingClient(server.address) as client:
                client.snapshot()  # lands the snapshot AND rotates
            wal_path.write_bytes(stale)  # un-rotate: the crash window
        finally:
            assert server.stop(timeout=10)
        restarted = ModelServer(snap, wal=True)
        assert restarted.wal_replayed_batches == 0  # both records skipped
        assert_states_identical(
            restarted.model, reference_fed(model_file, [b1, b2])
        )

    def test_mismatched_snapshot_wal_pair_refuses_to_recover(
        self, vot, model_file
    ):
        b1 = batches(vot, *BATCH_SLICES[:1])[0]
        reference = load_model(model_file)
        body = wal_body(
            1, reference.labels_.shape[0] + 17,  # from some *other* snapshot
            b1, reference.assignment_model_.assign(b1),
        )
        model_file.with_name(model_file.name + ".wal").write_bytes(
            wal_record(body)
        )
        with pytest.raises(TransportError, match="not a pair"):
            ModelServer(model_file, wal=True)

    def test_foreign_record_kind_refuses_to_recover(self, vot, model_file):
        body = pack_message("delta", {"seq": 1},
                            codes=np.zeros((1, 16), dtype=np.int64))
        model_file.with_name(model_file.name + ".wal").write_bytes(
            wal_record(body)
        )
        with pytest.raises(TransportError, match="malformed log record"):
            ModelServer(model_file, wal=True)


# ---------------------------------------------------------------------- #
# Rotation: snapshots and reload keep the log bounded
# ---------------------------------------------------------------------- #
class TestRotation:
    def test_explicit_snapshot_rotates(self, vot, model_file, tmp_path):
        snap = tmp_path / "snap.npz"
        server = ModelServer(model_file, snapshot_path=snap, wal=True).start()
        try:
            with ServingClient(server.address) as client:
                client.ingest(batches(vot, *BATCH_SLICES[:1])[0])
                assert server.info()["wal_records"] == 1
                client.snapshot()
            assert server.info()["wal_records"] == 0
            assert server.wal_path.stat().st_size == 0
        finally:
            assert server.stop(timeout=10)

    def test_snapshot_every_trigger_rotates(self, vot, model_file, tmp_path):
        snap = tmp_path / "snap.npz"
        server = ModelServer(
            model_file, snapshot_path=snap, snapshot_every=1, wal=True
        ).start()
        try:
            with ServingClient(server.address) as client:
                for batch in batches(vot, *BATCH_SLICES):
                    client.ingest(batch)
                    # every ingest snapshots, so the log never accumulates
                    assert server.info()["wal_records"] == 0
            assert snap.exists()
        finally:
            assert server.stop(timeout=10)

    def test_reload_truncates(self, vot, model_file):
        server = ModelServer(model_file, wal=True).start()
        try:
            with ServingClient(server.address) as client:
                client.ingest(batches(vot, *BATCH_SLICES[:1])[0])
                assert server.info()["wal_records"] == 1
                client.reload()  # back to the on-disk archive
            assert server.info()["wal_records"] == 0
            assert server.wal_path.stat().st_size == 0
        finally:
            assert server.stop(timeout=10)

    def test_drain_snapshot_rotates_and_closes(self, vot, model_file):
        # Build the reference before the drain snapshot overwrites the
        # archive (the default snapshot path IS the model file).
        reference = reference_fed(model_file, batches(vot, *BATCH_SLICES[:1]))
        server = ModelServer(model_file, wal=True).start()
        with ServingClient(server.address) as client:
            client.ingest(batches(vot, *BATCH_SLICES[:1])[0])
        wal_path = server.wal_path
        assert server.stop(timeout=10)
        # The drain snapshot persisted the batch and rotated the log, so a
        # restart replays nothing and still serves the acked state.
        assert wal_path.stat().st_size == 0
        restarted = ModelServer(model_file, wal=True)
        assert restarted.wal_replayed_batches == 0
        assert_states_identical(restarted.model, reference)


# ---------------------------------------------------------------------- #
# Bugfix regressions
# ---------------------------------------------------------------------- #
class TestAckSemanticsOnSnapshotFailure:
    def test_failed_post_ingest_snapshot_still_acks(
        self, vot, model_file, tmp_path, capfd
    ):
        # An unwritable snapshot target: the path's parent is a regular
        # file, so mkdir/mkstemp under it fails deterministically (works
        # even when the suite runs as root, unlike permission bits).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        server = ModelServer(
            model_file,
            snapshot_path=blocker / "snap.npz",
            snapshot_every=1,
        ).start()
        try:
            batch = batches(vot, *BATCH_SLICES[:1])[0]
            reference = load_model(model_file)
            with ServingClient(server.address) as client:
                # The regression: this used to come back as an error frame
                # even though the batch was applied and the delta published.
                np.testing.assert_array_equal(
                    client.ingest(batch), reference.ingest(batch)
                )
                info = client.info()
            assert info["snapshot_failures"] == 1
            assert info["ingested_batches"] == 1
            assert_states_identical(server.model, reference)
        finally:
            server.stop(timeout=10)  # drain snapshot fails too: reported
        err = capfd.readouterr().err
        assert "snapshot failed" in err
        assert server.snapshot_failures >= 2  # the ingest one + the drain one

    def test_explicit_snapshot_request_still_errors(
        self, vot, model_file, tmp_path
    ):
        # Only the *post-apply* failure is out-of-band; a client-requested
        # snapshot that fails has nothing acked riding on it and must raise.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        server = ModelServer(
            model_file, snapshot_path=blocker / "snap.npz"
        ).start()
        try:
            with ServingClient(server.address) as client:
                with pytest.raises(TransportError):
                    client.snapshot()
        finally:
            server.stop(timeout=10)


class TestSnapshotIntervalValidation:
    def test_zero_rejected_not_coerced_to_disabled(self, model_file):
        with pytest.raises(ValueError, match="snapshot_interval must be positive"):
            ModelServer(model_file, snapshot_interval=0)

    def test_negative_rejected(self, model_file):
        with pytest.raises(ValueError, match="snapshot_interval must be positive"):
            ModelServer(model_file, snapshot_interval=-2.5)

    def test_none_still_means_disabled(self, model_file):
        server = ModelServer(model_file, snapshot_interval=None)
        assert server.snapshot_interval is None

    def test_cli_rejects_zero(self, model_file, capsys):
        with pytest.raises(SystemExit, match="snapshot_interval must be positive"):
            cli_main(["serve", str(model_file), "--snapshot-interval", "0"])


class TestWalValidation:
    def test_invalid_sync_policy(self, model_file):
        with pytest.raises(ValueError, match="wal_sync"):
            ModelServer(model_file, wal=True, wal_sync="eventually")

    def test_wal_needs_a_snapshot_path(self, vot_model):
        with pytest.raises(ValueError, match="snapshot to pair with"):
            ModelServer(vot_model, wal=True)  # in-memory model: no paths

    def test_wal_rejected_on_a_replica(self, model_file):
        primary = ModelServer(model_file).start()
        try:
            with pytest.raises(ValueError, match="read replica"):
                ModelServer(None, replica_of=primary.address, wal=True)
        finally:
            assert primary.stop(timeout=10)

    def test_cli_rejects_wal_without_snapshot_path(self, vot_model, tmp_path):
        # Served from a model file there is always a snapshot path (the
        # archive itself), so exercise the server-side error through the
        # constructor; the CLI turns the same ValueError into SystemExit.
        with pytest.raises(ValueError):
            ModelServer(vot_model, wal=True, wal_sync="always")


# ---------------------------------------------------------------------- #
# Observability: WAL facts in info/welcome and through the router
# ---------------------------------------------------------------------- #
class TestWalFacts:
    def test_info_and_welcome_carry_wal_facts(self, vot, model_file):
        server = ModelServer(model_file, wal=True, wal_sync="always").start()
        try:
            with ServingClient(server.address) as client:
                welcome = client.server_info
                assert welcome["wal"] is True
                assert welcome["wal_sync"] == "always"
                client.ingest(batches(vot, *BATCH_SLICES[:1])[0])
                info = client.info()
            assert info["wal_records"] == 1
            assert info["wal_bytes"] > 0
            assert info["wal_path"] == str(server.wal_path)
            assert info["wal_replayed_batches"] == 0
            assert info["snapshot_failures"] == 0
        finally:
            assert server.stop(timeout=10)

    def test_wal_off_reports_off(self, model_file):
        server = ModelServer(model_file)
        info = server.info()
        assert info["wal"] is False
        assert info["wal_sync"] is None
        assert info["wal_path"] is None
        assert info["wal_records"] == 0

    def test_router_surfaces_primary_wal_facts(self, vot, model_file):
        server = ModelServer(model_file, wal=True).start()
        router = route_serving(primary=server.address)
        try:
            with ServingClient(router.address) as client:
                client.ingest(batches(vot, *BATCH_SLICES[:1])[0])
                info = client.info()
            facts = info["primary_wal"]
            assert facts["wal"] is True
            assert facts["wal_sync"] == "batch"
            assert facts["wal_records"] == 1
            assert facts["snapshot_failures"] == 0
        finally:
            assert router.stop(timeout=10)
            assert server.stop(timeout=10)

    def test_router_without_primary_reports_none(self, model_file):
        server = ModelServer(model_file).start()
        router = route_serving(replicas=[server.address])
        try:
            assert router.info()["primary_wal"] is None
        finally:
            assert router.stop(timeout=10)
            assert server.stop(timeout=10)
